//! Heavy-traffic workload cells: `(system, strategy, failure scenario,
//! workload)` combinations executed on the cluster's discrete-event
//! workload engine.
//!
//! The probe-count engine ([`crate::eval`]) answers *how many probes* a
//! strategy needs; this module answers how a strategy behaves **under
//! traffic**: many concurrent client sessions, per-node service queues, and
//! load-aware probe ordering. Each [`WorkloadCell`] runs one complete
//! workload simulation — sequential inside, so the discrete-event timeline is
//! exact — and cells run in parallel across the engine's rayon pool. Every
//! cell is a pure function of `(base_seed, cell index, cell spec)`, so the
//! resulting rows are bit-identical for any worker-thread count, like the
//! rest of the evaluation engine.

use std::sync::Arc;

use quorum_analysis::load_imbalance;
use quorum_cluster::{
    AgreementReport, ArrivalProcess, Backend, ChaosSchedule, Distribution, LiveOptions, LiveReport,
    NetProbe, NetSessionPlan, NetworkModel, PartitionSchedule, ProbePolicy, SessionPlan,
    SessionTrace, SimTime, SpecReport, WorkloadConfig, WorkloadSpec,
};
use quorum_core::{Color, Coloring};
use quorum_probe::session::{observed_coloring, ProbeFate};
use quorum_probe::strategies::{LeastLoadedScan, LoadView, PowerOfTwoScan};
use quorum_probe::{HealthConfig, HealthView};
use rayon::prelude::*;

use crate::eval::{
    derive_rng, universal_strategy, ColoringSource, DynProbeStrategy, DynSystem, EvalEngine,
};
use crate::report::Table;

/// Which probe strategy a workload cell runs.
#[derive(Clone)]
pub enum WorkloadStrategy {
    /// A load-blind strategy (typically one of the paper's algorithms).
    Paper(DynProbeStrategy),
    /// [`LeastLoadedScan`] over the cell's live load ledger.
    LeastLoaded,
    /// [`PowerOfTwoScan`] over the cell's live load ledger.
    PowerOfTwo,
}

impl WorkloadStrategy {
    /// The label used in report rows.
    pub fn label(&self) -> String {
        match self {
            WorkloadStrategy::Paper(strategy) => strategy.name(),
            WorkloadStrategy::LeastLoaded => "LeastLoaded".into(),
            WorkloadStrategy::PowerOfTwo => "PowerOfTwo".into(),
        }
    }
}

impl std::fmt::Debug for WorkloadStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkloadStrategy({})", self.label())
    }
}

/// One workload simulation: a system probed by a strategy under a failure
/// scenario and an arrival/service model.
#[derive(Clone)]
pub struct WorkloadCell {
    /// The quorum system under load.
    pub system: DynSystem,
    /// The probe strategy serving the sessions.
    pub strategy: WorkloadStrategy,
    /// The failure scenario: session `s` observes the scenario's trial-`s`
    /// coloring, so strategies sharing a cell index and seed are compared on
    /// identical failure timelines.
    pub source: ColoringSource,
    /// A short name for the arrival/service model (e.g. `"open-lan"`).
    pub workload: String,
    /// The arrival, latency, service and timeout model.
    pub config: WorkloadConfig,
}

/// The deterministic summary of one executed [`WorkloadCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// System label.
    pub system: String,
    /// Universe size.
    pub universe_size: usize,
    /// Strategy label.
    pub strategy: String,
    /// Workload label.
    pub workload: String,
    /// Failure-scenario label.
    pub scenario: String,
    /// Sessions completed.
    pub sessions: usize,
    /// Fraction of sessions that located a live quorum.
    pub success_rate: f64,
    /// Completed sessions per second of virtual time.
    pub throughput_per_sec: f64,
    /// Median session latency, microseconds of virtual time.
    pub p50_us: u64,
    /// 95th-percentile session latency.
    pub p95_us: u64,
    /// 99th-percentile session latency.
    pub p99_us: u64,
    /// Mean probes per session.
    pub probes_per_session: f64,
    /// Load-imbalance factor (max/mean probes per node).
    pub imbalance: f64,
    /// Highest backlog any node reached.
    pub peak_backlog: usize,
}

/// A LAN-ish open-loop workload: Poisson arrivals at the given mean
/// inter-arrival time, 100–400 µs one-way network delays, 150 µs mean
/// service times, 5 ms probe timeout.
pub fn open_poisson_workload(sessions: usize, mean_interarrival: SimTime) -> WorkloadConfig {
    WorkloadConfig {
        arrival: ArrivalProcess::OpenPoisson { mean_interarrival },
        sessions,
        rpc_latency: Distribution::uniform(SimTime::from_micros(100), SimTime::from_micros(400)),
        service: Distribution::exponential(SimTime::from_micros(150)),
        probe_timeout: SimTime::from_millis(5),
    }
}

/// A LAN-ish closed-loop workload: `clients` concurrent clients with
/// exponential think times of the given mean, same network/service model as
/// [`open_poisson_workload`].
pub fn closed_loop_workload(sessions: usize, clients: usize, think: SimTime) -> WorkloadConfig {
    WorkloadConfig {
        arrival: ArrivalProcess::ClosedLoop {
            clients,
            think: Distribution::exponential(think),
        },
        sessions,
        rpc_latency: Distribution::uniform(SimTime::from_micros(100), SimTime::from_micros(400)),
        service: Distribution::exponential(SimTime::from_micros(150)),
        probe_timeout: SimTime::from_millis(5),
    }
}

/// The standard two-entry workload battery: one open-loop and one closed-loop
/// arrival model over the shared LAN network/service profile.
pub fn standard_workloads(sessions: usize) -> Vec<(&'static str, WorkloadConfig)> {
    vec![
        (
            "open-poisson",
            open_poisson_workload(sessions, SimTime::from_micros(250)),
        ),
        (
            "closed-loop",
            closed_loop_workload(sessions, 16, SimTime::from_micros(500)),
        ),
    ]
}

/// Executes one cell. Sequential inside (the discrete-event timeline is a
/// strict total order); pure in `(base_seed, cell_index, cell)`.
fn run_cell(base_seed: u64, cell_index: u64, cell: &WorkloadCell) -> WorkloadOutcome {
    let n = cell.system.universe_size();
    // Only the load-aware strategies read the view; paper cells skip both
    // the allocation and the per-session score refresh below.
    let view = match &cell.strategy {
        WorkloadStrategy::Paper(_) => None,
        WorkloadStrategy::LeastLoaded | WorkloadStrategy::PowerOfTwo => Some(LoadView::new(n)),
    };
    let strategy: DynProbeStrategy = match (&cell.strategy, &view) {
        (WorkloadStrategy::Paper(strategy), _) => Arc::clone(strategy),
        (WorkloadStrategy::LeastLoaded, Some(view)) => {
            universal_strategy(LeastLoadedScan::new(view.clone()))
        }
        (WorkloadStrategy::PowerOfTwo, Some(view)) => {
            universal_strategy(PowerOfTwoScan::new(view.clone()))
        }
        _ => unreachable!("load-aware strategies always carry a view"),
    };
    assert!(
        strategy.supports(cell.system.as_ref()),
        "strategy {} does not support system {}",
        strategy.name(),
        cell.system.name()
    );

    // The engine's own randomness (latencies, service times, arrivals) is
    // seeded per cell; each session's strategy/scenario randomness derives
    // from (base_seed, cell, session) exactly like an eval-plan trial.
    let engine_seed = base_seed
        .rotate_left(17)
        .wrapping_add((cell_index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut scratch = Coloring::all_green(n);
    let report = WorkloadSpec::new(n)
        .config(cell.config)
        .run_plans(engine_seed, |session, ledger, now| {
            // Publish the ledger's current scores so load-aware strategies
            // see the backlog this session would join.
            if let Some(view) = &view {
                for e in 0..n {
                    view.set(e, ledger.score(e, now));
                }
            }
            let mut rng = derive_rng(base_seed, cell_index, session);
            cell.source.sample_into(n, session, &mut rng, &mut scratch);
            let run = strategy.run(cell.system.as_ref(), &scratch, &mut rng);
            SessionPlan {
                colors: run.sequence.iter().map(|&e| scratch.color(e)).collect(),
                sequence: run.sequence,
                success: run.witness.is_green(),
            }
        })
        .report;

    let peak_backlog = (0..n)
        .map(|e| report.ledger.peak_backlog(e))
        .max()
        .unwrap_or(0);
    WorkloadOutcome {
        system: cell.system.name(),
        universe_size: n,
        strategy: cell.strategy.label(),
        workload: cell.workload.clone(),
        scenario: cell.source.label(),
        sessions: report.sessions,
        success_rate: report.success_rate(),
        throughput_per_sec: report.throughput_per_sec(),
        p50_us: report.latency.p50().unwrap_or(0),
        p95_us: report.latency.p95().unwrap_or(0),
        p99_us: report.latency.p99().unwrap_or(0),
        probes_per_session: report.probes_per_session(),
        imbalance: load_imbalance(report.ledger.probes_received()),
        peak_backlog,
    }
}

/// Runs every cell, in parallel across the engine's worker pool, returning
/// outcomes in cell order. Bit-identical for any thread count.
pub fn run_workload_cells(
    engine: &EvalEngine,
    base_seed: u64,
    cells: &[WorkloadCell],
) -> Vec<WorkloadOutcome> {
    let indexed: Vec<(u64, &WorkloadCell)> = cells
        .iter()
        .enumerate()
        .map(|(index, cell)| (index as u64, cell))
        .collect();
    engine.install(|| {
        indexed
            .into_par_iter()
            .map(|(index, cell)| run_cell(base_seed, index, cell))
            .collect()
    })
}

/// Renders outcomes as the standard workload table.
pub fn outcomes_table(outcomes: &[WorkloadOutcome]) -> Table {
    let mut table = Table::new([
        "system",
        "n",
        "strategy",
        "workload",
        "scenario",
        "sessions",
        "ok_rate",
        "thr_per_s",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "probes",
        "imbalance",
    ]);
    for o in outcomes {
        table.add_row(vec![
            o.system.clone(),
            o.universe_size.to_string(),
            o.strategy.clone(),
            o.workload.clone(),
            o.scenario.clone(),
            o.sessions.to_string(),
            format!("{:.3}", o.success_rate),
            format!("{:.1}", o.throughput_per_sec),
            format!("{:.3}", o.p50_us as f64 / 1_000.0),
            format!("{:.3}", o.p95_us as f64 / 1_000.0),
            format!("{:.3}", o.p99_us as f64 / 1_000.0),
            format!("{:.2}", o.probes_per_session),
            format!("{:.2}", o.imbalance),
        ]);
    }
    table
}

/// A named network-fault scenario: a [`NetworkModel`] plus the client-side
/// [`ProbePolicy`] recommended for it.
#[derive(Debug, Clone)]
pub struct NetScenario {
    /// Canonical name, e.g. `"minority-part"`.
    pub name: &'static str,
    /// The message-level network the scenario runs on.
    pub network: NetworkModel,
    /// The robustness policy the scenario pairs with the network.
    pub policy: ProbePolicy,
}

/// The standard network-fault battery for a universe of `n` nodes under
/// `config`: clean, lossy, heavy-tail delay, minority partition, flapping
/// partition and asymmetric split.
///
/// Partition windows are placed relative to the run's
/// [`WorkloadConfig::horizon_hint`], so the same scenario scales with the
/// session count. The `clean` scenario is bit-identical to the latency-only
/// engine — it is the control row of every network experiment.
pub fn network_scenarios(n: usize, config: &WorkloadConfig) -> Vec<NetScenario> {
    let horizon = config.horizon_hint().as_micros();
    let at = |num: u64, den: u64| SimTime::from_micros(horizon * num / den);
    let third: Vec<usize> = (0..n / 3).collect();
    let quarter: Vec<usize> = (0..n / 4).collect();
    let backoff = SimTime::from_micros(300);
    let hedge = SimTime::from_millis(2);
    vec![
        NetScenario {
            name: "clean",
            network: NetworkModel::clean(),
            policy: ProbePolicy::sequential(),
        },
        NetScenario {
            // 6 % of messages vanish on each leg; three attempts with
            // backoff recover almost every probe.
            name: "lossy",
            network: NetworkModel::lossy(60_000),
            policy: ProbePolicy::retry(3, backoff),
        },
        NetScenario {
            // 4 % of messages hit an 8 ms straggler path: the hedged policy
            // overlaps the stragglers with the next candidate.
            name: "heavy-tail",
            network: NetworkModel {
                delay: Some(Distribution::heavy_tail(
                    SimTime::from_micros(100),
                    SimTime::from_micros(400),
                    SimTime::from_millis(8),
                    40_000,
                )),
                ..NetworkModel::clean()
            },
            policy: ProbePolicy::retry(2, backoff).with_hedge(hedge),
        },
        NetScenario {
            // A third of the universe is unreachable for the middle of the
            // run, then heals.
            name: "minority-part",
            network: NetworkModel {
                partitions: PartitionSchedule::minority(third.clone(), at(1, 4), at(5, 8)),
                ..NetworkModel::clean()
            },
            policy: ProbePolicy::retry(2, backoff).with_hedge(hedge),
        },
        NetScenario {
            // A quarter of the universe flaps: down for the first half of
            // every period through the first three quarters of the run.
            name: "flapping",
            network: NetworkModel {
                partitions: PartitionSchedule::flapping(quarter, at(1, 8), at(1, 16), at(3, 4)),
                ..NetworkModel::clean()
            },
            policy: ProbePolicy::retry(2, backoff).with_hedge(hedge),
        },
        NetScenario {
            // Requests reach a third of the universe — the nodes do the work
            // — but every response is dropped: pure wasted effort.
            name: "asym-split",
            network: NetworkModel {
                partitions: PartitionSchedule::asymmetric(third, at(1, 5), at(7, 10)),
                ..NetworkModel::clean()
            },
            policy: ProbePolicy::retry(2, backoff),
        },
    ]
}

/// The standard chaos battery for a universe of `n` nodes under `config`:
/// timed node-level faults (as distinct from [`network_scenarios`]' message
/// faults) placed relative to the run's [`WorkloadConfig::horizon_hint`].
///
/// * `crash-minority` — a third of the universe is dead for the middle of
///   the run; delivered requests are dropped unserved until restart.
/// * `rolling-restart` — the same third crashes one node at a time, the
///   classic staggered deploy.
/// * `stall-flap` — a quarter of the universe freezes for the first half of
///   every period through three quarters of the run, serving each backlog
///   too late to matter.
/// * `crash-part` — a compound fault: a crashed third *plus* a partitioned
///   disjoint quarter, so for a stretch of the run no majority is healthy.
///
/// Each scenario pairs with a bounded-retry policy; run the same cells with
/// and without [`NetWorkloadCell::with_health`] to measure what the
/// health-aware client buys.
pub fn chaos_scenarios(n: usize, config: &WorkloadConfig) -> Vec<NetScenario> {
    let horizon = config.horizon_hint().as_micros();
    let at = |num: u64, den: u64| SimTime::from_micros(horizon * num / den);
    let third: Vec<usize> = (0..n / 3).collect();
    let quarter: Vec<usize> = (0..n / 4).collect();
    let split: Vec<usize> = (n / 3..n / 3 + n / 4).collect();
    let policy = ProbePolicy::retry(2, SimTime::from_micros(300));
    vec![
        NetScenario {
            name: "crash-minority",
            network: NetworkModel::clean().with_chaos(ChaosSchedule::crash(
                third.clone(),
                at(1, 4),
                at(5, 8),
            )),
            policy,
        },
        NetScenario {
            name: "rolling-restart",
            network: NetworkModel::clean().with_chaos(ChaosSchedule::rolling_restart(
                third.clone(),
                at(1, 8),
                at(1, 8),
                at(1, 16),
            )),
            policy,
        },
        NetScenario {
            name: "stall-flap",
            network: NetworkModel::clean().with_chaos(ChaosSchedule::stall_flapping(
                quarter,
                at(1, 8),
                at(1, 16),
                at(3, 4),
            )),
            policy,
        },
        NetScenario {
            name: "crash-part",
            network: NetworkModel {
                partitions: PartitionSchedule::minority(split, at(3, 8), at(5, 8)),
                ..NetworkModel::clean()
            }
            .with_chaos(ChaosSchedule::crash(third, at(1, 4), at(1, 2))),
            policy,
        },
    ]
}

/// One message-level workload simulation: a [`WorkloadCell`] plus the
/// network-fault scenario it runs through.
#[derive(Clone)]
pub struct NetWorkloadCell {
    /// The quorum system under load.
    pub system: DynSystem,
    /// The probe strategy serving the sessions.
    pub strategy: WorkloadStrategy,
    /// The failure scenario (true crashes, as distinct from network faults).
    pub source: ColoringSource,
    /// A short name for the arrival/service model.
    pub workload: String,
    /// The arrival, latency, service and timeout model.
    pub config: WorkloadConfig,
    /// The network-fault scenario's name (report column).
    pub net: String,
    /// The message-level network the cell runs on.
    pub network: NetworkModel,
    /// The client-side robustness policy.
    pub policy: ProbePolicy,
    /// When set, every session runs behind a shared [`HealthView`] circuit
    /// breaker: probes to open nodes are shed, sessions that cannot reach a
    /// healthy quorum degrade without probing, and probe outcomes feed the
    /// per-node failure EWMA.
    pub health: Option<HealthConfig>,
}

impl NetWorkloadCell {
    /// Lifts a latency-only cell onto a network scenario (health-blind).
    pub fn from_cell(cell: WorkloadCell, scenario: &NetScenario) -> Self {
        NetWorkloadCell {
            system: cell.system,
            strategy: cell.strategy,
            source: cell.source,
            workload: cell.workload,
            config: cell.config,
            net: scenario.name.to_string(),
            network: scenario.network.clone(),
            policy: scenario.policy,
            health: None,
        }
    }

    /// Puts the cell's sessions behind a health-aware circuit breaker.
    pub fn with_health(mut self, config: HealthConfig) -> Self {
        self.health = Some(config);
        self
    }
}

/// The deterministic summary of one executed [`NetWorkloadCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetWorkloadOutcome {
    /// System label.
    pub system: String,
    /// Universe size.
    pub universe_size: usize,
    /// Strategy label.
    pub strategy: String,
    /// Workload label.
    pub workload: String,
    /// Network-scenario label.
    pub net: String,
    /// Policy label.
    pub policy: String,
    /// Failure-scenario label.
    pub scenario: String,
    /// Sessions completed.
    pub sessions: usize,
    /// Fraction of sessions that located a live quorum in their *observed*
    /// coloring (network faults can push this below the crash-only rate).
    pub success_rate: f64,
    /// Completed sessions per second of virtual time.
    pub throughput_per_sec: f64,
    /// Median session latency, microseconds of virtual time.
    pub p50_us: u64,
    /// 95th-percentile session latency.
    pub p95_us: u64,
    /// 99th-percentile session latency.
    pub p99_us: u64,
    /// Mean probes per session (attempts included).
    pub probes_per_session: f64,
    /// Mean messages per session (requests plus transmitted responses).
    pub messages_per_session: f64,
    /// Fraction of probe attempts whose answer was never used.
    pub wasted_fraction: f64,
    /// Load-imbalance factor (max/mean probes per node).
    pub imbalance: f64,
    /// Highest backlog any node reached.
    pub peak_backlog: usize,
    /// Sessions that degraded gracefully instead of failing outright: the
    /// health layer either shed at least one of their probes or declined the
    /// whole session because no healthy quorum was reachable. Always zero
    /// for health-blind cells.
    pub degraded: u64,
    /// Requests delivered into crashed nodes and dropped unserved.
    pub lost_to_crash: u64,
}

/// Executes one network cell on the given backend via [`WorkloadSpec`].
/// Sequential inside; the sim half is pure in `(base_seed, cell_index,
/// cell)`. Uses the same engine seed derivation as the latency-only
/// [`run_cell`], so a `clean` network cell reproduces its [`WorkloadCell`]
/// twin bit for bit.
fn run_net_cell_spec(
    base_seed: u64,
    cell_index: u64,
    cell: &NetWorkloadCell,
    backend: Backend,
) -> (SpecReport, u64) {
    let n = cell.system.universe_size();
    let view = match &cell.strategy {
        WorkloadStrategy::Paper(_) => None,
        WorkloadStrategy::LeastLoaded | WorkloadStrategy::PowerOfTwo => Some(LoadView::new(n)),
    };
    let strategy: DynProbeStrategy = match (&cell.strategy, &view) {
        (WorkloadStrategy::Paper(strategy), _) => Arc::clone(strategy),
        (WorkloadStrategy::LeastLoaded, Some(view)) => {
            universal_strategy(LeastLoadedScan::new(view.clone()))
        }
        (WorkloadStrategy::PowerOfTwo, Some(view)) => {
            universal_strategy(PowerOfTwoScan::new(view.clone()))
        }
        _ => unreachable!("load-aware strategies always carry a view"),
    };
    assert!(
        strategy.supports(cell.system.as_ref()),
        "strategy {} does not support system {}",
        strategy.name(),
        cell.system.name()
    );

    let engine_seed = base_seed
        .rotate_left(17)
        .wrapping_add((cell_index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut scratch = Coloring::all_green(n);
    let health = cell.health.map(|config| HealthView::new(n, config));
    let mut degraded = 0u64;
    let report = WorkloadSpec::new(n)
        .config(cell.config)
        .network(cell.network.clone())
        .policy(cell.policy)
        .backend(backend)
        .run(engine_seed, |session, ledger, now, net_rng| {
            if let Some(view) = &view {
                for e in 0..n {
                    view.set(e, ledger.score(e, now));
                }
            }
            // Sessions run sequentially in arrival order, so consulting and
            // feeding the shared health view here is deterministic — and the
            // resulting plans carry the gating into both backends.
            let now_micros = now.as_micros();
            if let Some(health) = &health {
                if !health.quorum_reachable(cell.system.as_ref(), now_micros) {
                    degraded += 1;
                    return NetSessionPlan {
                        probes: Vec::new(),
                        success: false,
                    };
                }
            }
            let mut rng = derive_rng(base_seed, cell_index, session);
            cell.source.sample_into(n, session, &mut rng, &mut scratch);
            // The client sees crashes *through* the network: transit fates
            // can turn live elements red, and the strategy adapts to the
            // observed coloring, not the true one. Open breakers shed their
            // element — observed red at zero cost, no randomness consumed.
            let (observed, mut fates) = observed_coloring(&scratch, |e, color| match &health {
                Some(health) if health.is_open(e, now_micros) => ProbeFate::shed(),
                _ => cell
                    .network
                    .probe_fate(e, color == Color::Green, now, &cell.policy, net_rng),
            });
            let run = strategy.run(cell.system.as_ref(), &observed, &mut rng);
            let probes: Vec<NetProbe> = run
                .sequence
                .iter()
                .map(|&e| NetProbe {
                    node: e,
                    observed: observed.color(e),
                    failures: std::mem::take(&mut fates[e].failures),
                })
                .collect();
            let ok = run.witness.is_green();
            if let Some(health) = &health {
                // Only probes the strategy actually issued teach the view;
                // shed probes never reached the node, so they carry no new
                // evidence.
                let mut any_shed = false;
                for probe in &probes {
                    let shed = probe.observed == Color::Red && probe.failures.is_empty();
                    any_shed |= shed;
                    if !shed {
                        health.record(probe.node, probe.observed == Color::Green, now_micros);
                    }
                }
                if !ok && any_shed {
                    degraded += 1;
                }
            }
            NetSessionPlan {
                probes,
                success: ok,
            }
        });
    (report, degraded)
}

/// Summarises an executed network cell's engine report as the standard row.
fn net_outcome_from_report(
    cell: &NetWorkloadCell,
    report: &quorum_cluster::WorkloadReport,
    degraded: u64,
) -> NetWorkloadOutcome {
    let n = cell.system.universe_size();
    let peak_backlog = (0..n)
        .map(|e| report.ledger.peak_backlog(e))
        .max()
        .unwrap_or(0);
    NetWorkloadOutcome {
        system: cell.system.name(),
        universe_size: n,
        strategy: cell.strategy.label(),
        workload: cell.workload.clone(),
        net: cell.net.clone(),
        policy: cell.policy.label(),
        scenario: cell.source.label(),
        sessions: report.sessions,
        success_rate: report.success_rate(),
        throughput_per_sec: report.throughput_per_sec(),
        p50_us: report.latency.p50().unwrap_or(0),
        p95_us: report.latency.p95().unwrap_or(0),
        p99_us: report.latency.p99().unwrap_or(0),
        probes_per_session: report.probes_per_session(),
        messages_per_session: report.messages_per_session(),
        wasted_fraction: report.wasted_fraction(),
        imbalance: load_imbalance(report.ledger.probes_received()),
        peak_backlog,
        degraded,
        lost_to_crash: report.lost_to_crash,
    }
}

/// Executes one network cell on the sim backend.
fn run_net_cell(base_seed: u64, cell_index: u64, cell: &NetWorkloadCell) -> NetWorkloadOutcome {
    let (spec, degraded) = run_net_cell_spec(base_seed, cell_index, cell, Backend::Sim);
    net_outcome_from_report(cell, &spec.report, degraded)
}

/// The result of executing one network cell on **both** backends: the sim
/// row, the live runtime's wall-clock report, and the observable-by-
/// observable cross-validation between the two executions.
#[derive(Debug)]
pub struct LiveCellOutcome {
    /// The simulator's row for the cell (virtual time).
    pub sim: NetWorkloadOutcome,
    /// The live runtime's report for the same trace (wall-clock time).
    pub live: LiveReport,
    /// The sim-vs-live agreement verdict.
    pub agreement: AgreementReport,
    /// The captured per-session trace both backends executed — the input to
    /// recovery metrics like [`chaos_recovery_micros`].
    pub trace: SessionTrace,
}

/// Executes one network cell through [`Backend::Live`]: the simulator runs
/// first (bit-identical to [`run_net_workload_cells`] for the same seed and
/// cell index), its trace replays on the real-concurrency runtime, and every
/// logical observable is cross-validated between the two executions.
pub fn run_live_cell(
    base_seed: u64,
    cell_index: u64,
    cell: &NetWorkloadCell,
    options: &LiveOptions,
) -> LiveCellOutcome {
    let (spec, degraded) =
        run_net_cell_spec(base_seed, cell_index, cell, Backend::Live(options.clone()));
    LiveCellOutcome {
        sim: net_outcome_from_report(cell, &spec.report, degraded),
        live: spec.live.expect("the live backend always reports"),
        agreement: spec.agreement.expect("the live backend always validates"),
        trace: spec.trace.expect("the live backend always traces"),
    }
}

/// The deterministic recovery metric of one executed chaos cell: for every
/// node a non-inert chaos window disrupted, the virtual delay (microseconds)
/// between the end of its *last* disruption and the arrival of the first
/// session that observed the node green again — or `None` if the trace never
/// saw it recover. Pure function of the trace and schedule, so both backends
/// report it identically.
pub fn chaos_recovery_micros(
    trace: &SessionTrace,
    chaos: &ChaosSchedule,
) -> Vec<(usize, Option<u64>)> {
    let mut nodes: Vec<usize> = chaos
        .windows()
        .iter()
        .flat_map(|w| w.nodes.iter().copied())
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
        .into_iter()
        .filter_map(|node| {
            let end = chaos.last_disruption_end(node)?;
            let recovered = trace
                .sessions
                .iter()
                .filter(|s| s.arrival >= end)
                .find(|s| {
                    s.plan
                        .probes
                        .iter()
                        .any(|p| p.node == node && p.observed == Color::Green)
                })
                .map(|s| (s.arrival - end).as_micros());
            Some((node, recovered))
        })
        .collect()
}

/// Runs every network cell, in parallel across the engine's worker pool,
/// returning outcomes in cell order. Bit-identical for any thread count.
pub fn run_net_workload_cells(
    engine: &EvalEngine,
    base_seed: u64,
    cells: &[NetWorkloadCell],
) -> Vec<NetWorkloadOutcome> {
    let indexed: Vec<(u64, &NetWorkloadCell)> = cells
        .iter()
        .enumerate()
        .map(|(index, cell)| (index as u64, cell))
        .collect();
    engine.install(|| {
        indexed
            .into_par_iter()
            .map(|(index, cell)| run_net_cell(base_seed, index, cell))
            .collect()
    })
}

/// Renders network outcomes as the standard network-workload table.
pub fn net_outcomes_table(outcomes: &[NetWorkloadOutcome]) -> Table {
    let mut table = Table::new([
        "system",
        "n",
        "strategy",
        "net",
        "policy",
        "scenario",
        "sessions",
        "ok_rate",
        "thr_per_s",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "probes",
        "msgs",
        "wasted",
    ]);
    for o in outcomes {
        table.add_row(vec![
            o.system.clone(),
            o.universe_size.to_string(),
            o.strategy.clone(),
            o.net.clone(),
            o.policy.clone(),
            o.scenario.clone(),
            o.sessions.to_string(),
            format!("{:.3}", o.success_rate),
            format!("{:.1}", o.throughput_per_sec),
            format!("{:.3}", o.p50_us as f64 / 1_000.0),
            format!("{:.3}", o.p95_us as f64 / 1_000.0),
            format!("{:.3}", o.p99_us as f64 / 1_000.0),
            format!("{:.2}", o.probes_per_session),
            format!("{:.2}", o.messages_per_session),
            format!("{:.3}", o.wasted_fraction),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::erase_system;
    use quorum_probe::strategies::SequentialScan;
    use quorum_systems::Majority;

    fn maj_cells(sessions: usize) -> Vec<WorkloadCell> {
        let system = erase_system(Majority::new(15).unwrap());
        let workloads = standard_workloads(sessions);
        let mut cells = Vec::new();
        for strategy in [
            WorkloadStrategy::Paper(universal_strategy(SequentialScan::new())),
            WorkloadStrategy::LeastLoaded,
            WorkloadStrategy::PowerOfTwo,
        ] {
            for (name, config) in &workloads {
                cells.push(WorkloadCell {
                    system: system.clone(),
                    strategy: strategy.clone(),
                    source: ColoringSource::iid(0.1),
                    workload: (*name).to_string(),
                    config: *config,
                });
            }
        }
        cells
    }

    #[test]
    fn outcomes_are_thread_count_invariant() {
        let cells = maj_cells(300);
        let single = run_workload_cells(&EvalEngine::with_threads(1), 42, &cells);
        let parallel = run_workload_cells(&EvalEngine::with_threads(4), 42, &cells);
        assert_eq!(single, parallel, "workload rows diverged across threads");
        assert_eq!(
            outcomes_table(&single).render(),
            outcomes_table(&parallel).render()
        );
    }

    #[test]
    fn load_aware_strategies_flatten_the_load() {
        let cells = maj_cells(400);
        let outcomes = run_workload_cells(&EvalEngine::with_threads(0), 7, &cells);
        let imbalance_of = |strategy: &str, workload: &str| {
            outcomes
                .iter()
                .find(|o| o.strategy == strategy && o.workload == workload)
                .map(|o| o.imbalance)
                .expect("cell exists")
        };
        for workload in ["open-poisson", "closed-loop"] {
            let sequential = imbalance_of("SequentialScan", workload);
            let least = imbalance_of("LeastLoaded", workload);
            let p2c = imbalance_of("PowerOfTwo", workload);
            // A sequential scan on Maj(15) leaves almost half the universe
            // unprobed; both load-aware orders must spread load far flatter.
            assert!(
                least < sequential,
                "{workload}: least-loaded {least} vs sequential {sequential}"
            );
            assert!(
                p2c < sequential,
                "{workload}: power-of-two {p2c} vs sequential {sequential}"
            );
            assert!(least < 1.25, "{workload}: least-loaded should be near-flat");
        }
    }

    #[test]
    fn outcome_metrics_are_sane() {
        let cells = maj_cells(200);
        let outcomes = run_workload_cells(&EvalEngine::with_threads(0), 11, &cells);
        assert_eq!(outcomes.len(), cells.len());
        for o in &outcomes {
            assert_eq!(o.sessions, 200);
            assert!(o.success_rate > 0.9, "iid(0.1) rarely kills Maj(15)");
            assert!(o.throughput_per_sec > 0.0);
            assert!(o.p50_us <= o.p95_us && o.p95_us <= o.p99_us);
            assert!(o.probes_per_session >= 8.0, "majority needs 8 greens");
            assert!(o.imbalance >= 1.0);
            assert!(o.peak_backlog >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn incompatible_paper_strategy_is_rejected() {
        use quorum_probe::strategies::ProbeCw;
        use quorum_systems::CrumblingWalls;
        let cell = WorkloadCell {
            system: erase_system(Majority::new(5).unwrap()),
            strategy: WorkloadStrategy::Paper(crate::eval::typed_strategy::<CrumblingWalls, _>(
                ProbeCw::new(),
            )),
            source: ColoringSource::iid(0.1),
            workload: "open".into(),
            config: open_poisson_workload(10, SimTime::from_micros(200)),
        };
        let _ = run_workload_cells(&EvalEngine::with_threads(1), 1, &[cell]);
    }

    #[test]
    fn clean_network_cells_reproduce_latency_cells_bit_for_bit() {
        // The acceptance guarantee of the message-level engine: lifting a
        // cell onto the clean scenario changes *nothing* — same engine seed,
        // same draws, same rows.
        let cells = maj_cells(200);
        let plain = run_workload_cells(&EvalEngine::with_threads(0), 42, &cells);
        let clean = NetScenario {
            name: "clean",
            network: NetworkModel::clean(),
            policy: ProbePolicy::sequential(),
        };
        let net_cells: Vec<NetWorkloadCell> = cells
            .into_iter()
            .map(|cell| NetWorkloadCell::from_cell(cell, &clean))
            .collect();
        let net = run_net_workload_cells(&EvalEngine::with_threads(0), 42, &net_cells);
        assert_eq!(plain.len(), net.len());
        for (a, b) in plain.iter().zip(&net) {
            assert_eq!(
                a.success_rate, b.success_rate,
                "{}/{}",
                a.system, a.workload
            );
            assert_eq!(a.throughput_per_sec, b.throughput_per_sec);
            assert_eq!(
                (a.p50_us, a.p95_us, a.p99_us),
                (b.p50_us, b.p95_us, b.p99_us)
            );
            assert_eq!(a.probes_per_session, b.probes_per_session);
            assert_eq!(a.imbalance, b.imbalance);
            assert_eq!(a.peak_backlog, b.peak_backlog);
            assert_eq!(b.wasted_fraction, 0.0, "clean networks waste nothing");
        }
    }

    #[test]
    fn net_outcomes_are_thread_count_invariant() {
        let system = erase_system(Majority::new(15).unwrap());
        let config = open_poisson_workload(250, SimTime::from_micros(250));
        let cells: Vec<NetWorkloadCell> = network_scenarios(15, &config)
            .iter()
            .map(|scenario| {
                NetWorkloadCell::from_cell(
                    WorkloadCell {
                        system: system.clone(),
                        strategy: WorkloadStrategy::Paper(
                            universal_strategy(SequentialScan::new()),
                        ),
                        source: ColoringSource::iid(0.1),
                        workload: "open-poisson".into(),
                        config,
                    },
                    scenario,
                )
            })
            .collect();
        assert_eq!(cells.len(), 6, "the standard battery has six scenarios");
        let single = run_net_workload_cells(&EvalEngine::with_threads(1), 9, &cells);
        let parallel = run_net_workload_cells(&EvalEngine::with_threads(4), 9, &cells);
        assert_eq!(single, parallel, "network rows diverged across threads");
        assert_eq!(
            net_outcomes_table(&single).render(),
            net_outcomes_table(&parallel).render()
        );
    }

    #[test]
    fn network_faults_degrade_and_policies_recover() {
        let system = erase_system(Majority::new(15).unwrap());
        let config = open_poisson_workload(300, SimTime::from_micros(250));
        let lossy_net = NetworkModel::lossy(150_000); // 15 % per leg
        let build = |net: &str, network: NetworkModel, policy: ProbePolicy| NetWorkloadCell {
            system: system.clone(),
            strategy: WorkloadStrategy::Paper(universal_strategy(SequentialScan::new())),
            source: ColoringSource::iid(0.05),
            workload: "open-poisson".into(),
            config,
            net: net.into(),
            network,
            policy,
            health: None,
        };
        let cells = vec![
            build("clean", NetworkModel::clean(), ProbePolicy::sequential()),
            build("lossy", lossy_net.clone(), ProbePolicy::sequential()),
            build(
                "lossy",
                lossy_net,
                ProbePolicy::retry(4, SimTime::from_micros(200)),
            ),
        ];
        let outcomes = run_net_workload_cells(&EvalEngine::with_threads(0), 3, &cells);
        let (clean, naive, robust) = (&outcomes[0], &outcomes[1], &outcomes[2]);
        assert!(
            naive.success_rate < clean.success_rate,
            "loss must hurt the naive policy: {} vs {}",
            naive.success_rate,
            clean.success_rate
        );
        assert!(
            robust.success_rate > naive.success_rate,
            "retries must recover ok-rate: {} vs {}",
            robust.success_rate,
            naive.success_rate
        );
        assert_eq!(clean.wasted_fraction, 0.0);
        assert!(naive.wasted_fraction > 0.0);
        assert!(robust.messages_per_session > clean.messages_per_session);
    }

    fn chaos_cell(
        n: usize,
        config: WorkloadConfig,
        scenario: &NetScenario,
        health: Option<HealthConfig>,
    ) -> NetWorkloadCell {
        let mut cell = NetWorkloadCell::from_cell(
            WorkloadCell {
                system: erase_system(Majority::new(n).unwrap()),
                strategy: WorkloadStrategy::Paper(universal_strategy(SequentialScan::new())),
                source: ColoringSource::iid(0.02),
                workload: "open-poisson".into(),
                config,
            },
            scenario,
        );
        if let Some(config) = health {
            cell = cell.with_health(config);
        }
        cell
    }

    #[test]
    fn chaos_cells_cross_validate_on_the_live_runtime() {
        let n = 15;
        let config = open_poisson_workload(80, SimTime::from_micros(250));
        let options = LiveOptions::default().time_scale(0.002);
        for (index, scenario) in chaos_scenarios(n, &config).iter().enumerate() {
            let cell = chaos_cell(n, config, scenario, None);
            let outcome = run_live_cell(21, index as u64, &cell, &options);
            assert!(
                outcome.agreement.agree,
                "{}: sim and live disagreed: {:?}",
                scenario.name, outcome.agreement.mismatches
            );
            assert!(
                outcome.live.drained_clean(),
                "{}: delivered != served + lost_to_crash",
                scenario.name
            );
            assert_eq!(
                outcome.sim.lost_to_crash, outcome.live.requests_lost_to_crash,
                "{}: the two backends must lose the same requests",
                scenario.name
            );
        }
    }

    #[test]
    fn crash_scenarios_lose_requests_and_report_recovery() {
        let n = 15;
        let config = open_poisson_workload(300, SimTime::from_micros(250));
        let scenarios = chaos_scenarios(n, &config);
        let crash = scenarios
            .iter()
            .find(|s| s.name == "crash-minority")
            .expect("battery has crash-minority");
        let cell = chaos_cell(n, config, crash, None);
        let options = LiveOptions::default().time_scale(0.002);
        let outcome = run_live_cell(33, 0, &cell, &options);
        assert!(
            outcome.sim.lost_to_crash > 0,
            "a crashed third must swallow some delivered requests"
        );
        let recovery = chaos_recovery_micros(&outcome.trace, &cell.network.chaos);
        assert_eq!(recovery.len(), n / 3, "one row per crashed node");
        for (node, recovered) in &recovery {
            assert!(*node < n / 3);
            let micros = recovered.expect("the schedule heals well before the run ends");
            let horizon = config.horizon_hint().as_micros();
            assert!(
                micros < horizon,
                "node {node} took {micros}us to be seen green again"
            );
        }
    }

    #[test]
    fn health_aware_clients_beat_naive_ones_under_chaos() {
        let n = 15;
        let config = open_poisson_workload(400, SimTime::from_micros(250));
        let scenarios = chaos_scenarios(n, &config);
        for name in ["crash-minority", "rolling-restart"] {
            let scenario = scenarios.iter().find(|s| s.name == name).unwrap();
            let naive = chaos_cell(n, config, scenario, None);
            let aware = chaos_cell(n, config, scenario, Some(HealthConfig::default()));
            let outcomes =
                run_net_workload_cells(&EvalEngine::with_threads(0), 17, &[naive, aware]);
            let (naive, aware) = (&outcomes[0], &outcomes[1]);
            assert_eq!(naive.degraded, 0, "health-blind cells never degrade");
            assert!(
                aware.wasted_fraction < naive.wasted_fraction,
                "{name}: shedding must cut wasted probes: {} vs {}",
                aware.wasted_fraction,
                naive.wasted_fraction
            );
            assert!(
                aware.success_rate >= naive.success_rate - 0.02,
                "{name}: shedding sick nodes must not cost ok-rate: {} vs {}",
                aware.success_rate,
                naive.success_rate
            );
        }
    }

    #[test]
    fn chaos_outcomes_are_thread_count_invariant() {
        let n = 15;
        let config = open_poisson_workload(200, SimTime::from_micros(250));
        let cells: Vec<NetWorkloadCell> = chaos_scenarios(n, &config)
            .iter()
            .flat_map(|scenario| {
                [
                    chaos_cell(n, config, scenario, None),
                    chaos_cell(n, config, scenario, Some(HealthConfig::default())),
                ]
            })
            .collect();
        let single = run_net_workload_cells(&EvalEngine::with_threads(1), 13, &cells);
        let parallel = run_net_workload_cells(&EvalEngine::with_threads(4), 13, &cells);
        assert_eq!(single, parallel, "chaos rows diverged across threads");
    }

    #[test]
    fn asymmetric_splits_waste_served_work() {
        let system = erase_system(Majority::new(15).unwrap());
        let config = open_poisson_workload(300, SimTime::from_micros(250));
        let scenarios = network_scenarios(15, &config);
        let asym = scenarios
            .iter()
            .find(|s| s.name == "asym-split")
            .expect("battery has the asymmetric split");
        let cell = NetWorkloadCell::from_cell(
            WorkloadCell {
                system: system.clone(),
                strategy: WorkloadStrategy::Paper(universal_strategy(SequentialScan::new())),
                source: ColoringSource::iid(0.02),
                workload: "open-poisson".into(),
                config,
            },
            asym,
        );
        let outcome = &run_net_workload_cells(&EvalEngine::with_threads(1), 5, &[cell])[0];
        assert!(
            outcome.wasted_fraction > 0.0,
            "responses dropped after service must register as waste"
        );
        // Every attempt transmits its request; only served attempts also
        // transmit a response — so messages sit within [probes, 2·probes].
        assert!(outcome.messages_per_session <= 2.0 * outcome.probes_per_session);
        assert!(outcome.messages_per_session >= outcome.probes_per_session);
    }
}

//! Heavy-traffic workload cells: `(system, strategy, failure scenario,
//! workload)` combinations executed on the cluster's discrete-event
//! workload engine.
//!
//! The probe-count engine ([`crate::eval`]) answers *how many probes* a
//! strategy needs; this module answers how a strategy behaves **under
//! traffic**: many concurrent client sessions, per-node service queues, and
//! load-aware probe ordering. Each [`WorkloadCell`] runs one complete
//! workload simulation — sequential inside, so the discrete-event timeline is
//! exact — and cells run in parallel across the engine's rayon pool. Every
//! cell is a pure function of `(base_seed, cell index, cell spec)`, so the
//! resulting rows are bit-identical for any worker-thread count, like the
//! rest of the evaluation engine.

use std::sync::Arc;

use quorum_analysis::load_imbalance;
use quorum_cluster::{
    run_workload, ArrivalProcess, Distribution, SessionPlan, SimTime, WorkloadConfig,
};
use quorum_core::Coloring;
use quorum_probe::strategies::{LeastLoadedScan, LoadView, PowerOfTwoScan};
use rayon::prelude::*;

use crate::eval::{
    derive_rng, universal_strategy, ColoringSource, DynProbeStrategy, DynSystem, EvalEngine,
};
use crate::report::Table;

/// Which probe strategy a workload cell runs.
#[derive(Clone)]
pub enum WorkloadStrategy {
    /// A load-blind strategy (typically one of the paper's algorithms).
    Paper(DynProbeStrategy),
    /// [`LeastLoadedScan`] over the cell's live load ledger.
    LeastLoaded,
    /// [`PowerOfTwoScan`] over the cell's live load ledger.
    PowerOfTwo,
}

impl WorkloadStrategy {
    /// The label used in report rows.
    pub fn label(&self) -> String {
        match self {
            WorkloadStrategy::Paper(strategy) => strategy.name(),
            WorkloadStrategy::LeastLoaded => "LeastLoaded".into(),
            WorkloadStrategy::PowerOfTwo => "PowerOfTwo".into(),
        }
    }
}

impl std::fmt::Debug for WorkloadStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkloadStrategy({})", self.label())
    }
}

/// One workload simulation: a system probed by a strategy under a failure
/// scenario and an arrival/service model.
#[derive(Clone)]
pub struct WorkloadCell {
    /// The quorum system under load.
    pub system: DynSystem,
    /// The probe strategy serving the sessions.
    pub strategy: WorkloadStrategy,
    /// The failure scenario: session `s` observes the scenario's trial-`s`
    /// coloring, so strategies sharing a cell index and seed are compared on
    /// identical failure timelines.
    pub source: ColoringSource,
    /// A short name for the arrival/service model (e.g. `"open-lan"`).
    pub workload: String,
    /// The arrival, latency, service and timeout model.
    pub config: WorkloadConfig,
}

/// The deterministic summary of one executed [`WorkloadCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// System label.
    pub system: String,
    /// Universe size.
    pub universe_size: usize,
    /// Strategy label.
    pub strategy: String,
    /// Workload label.
    pub workload: String,
    /// Failure-scenario label.
    pub scenario: String,
    /// Sessions completed.
    pub sessions: usize,
    /// Fraction of sessions that located a live quorum.
    pub success_rate: f64,
    /// Completed sessions per second of virtual time.
    pub throughput_per_sec: f64,
    /// Median session latency, microseconds of virtual time.
    pub p50_us: u64,
    /// 95th-percentile session latency.
    pub p95_us: u64,
    /// 99th-percentile session latency.
    pub p99_us: u64,
    /// Mean probes per session.
    pub probes_per_session: f64,
    /// Load-imbalance factor (max/mean probes per node).
    pub imbalance: f64,
    /// Highest backlog any node reached.
    pub peak_backlog: usize,
}

/// A LAN-ish open-loop workload: Poisson arrivals at the given mean
/// inter-arrival time, 100–400 µs one-way network delays, 150 µs mean
/// service times, 5 ms probe timeout.
pub fn open_poisson_workload(sessions: usize, mean_interarrival: SimTime) -> WorkloadConfig {
    WorkloadConfig {
        arrival: ArrivalProcess::OpenPoisson { mean_interarrival },
        sessions,
        rpc_latency: Distribution::uniform(SimTime::from_micros(100), SimTime::from_micros(400)),
        service: Distribution::exponential(SimTime::from_micros(150)),
        probe_timeout: SimTime::from_millis(5),
    }
}

/// A LAN-ish closed-loop workload: `clients` concurrent clients with
/// exponential think times of the given mean, same network/service model as
/// [`open_poisson_workload`].
pub fn closed_loop_workload(sessions: usize, clients: usize, think: SimTime) -> WorkloadConfig {
    WorkloadConfig {
        arrival: ArrivalProcess::ClosedLoop {
            clients,
            think: Distribution::exponential(think),
        },
        sessions,
        rpc_latency: Distribution::uniform(SimTime::from_micros(100), SimTime::from_micros(400)),
        service: Distribution::exponential(SimTime::from_micros(150)),
        probe_timeout: SimTime::from_millis(5),
    }
}

/// The standard two-entry workload battery: one open-loop and one closed-loop
/// arrival model over the shared LAN network/service profile.
pub fn standard_workloads(sessions: usize) -> Vec<(&'static str, WorkloadConfig)> {
    vec![
        (
            "open-poisson",
            open_poisson_workload(sessions, SimTime::from_micros(250)),
        ),
        (
            "closed-loop",
            closed_loop_workload(sessions, 16, SimTime::from_micros(500)),
        ),
    ]
}

/// Executes one cell. Sequential inside (the discrete-event timeline is a
/// strict total order); pure in `(base_seed, cell_index, cell)`.
fn run_cell(base_seed: u64, cell_index: u64, cell: &WorkloadCell) -> WorkloadOutcome {
    let n = cell.system.universe_size();
    // Only the load-aware strategies read the view; paper cells skip both
    // the allocation and the per-session score refresh below.
    let view = match &cell.strategy {
        WorkloadStrategy::Paper(_) => None,
        WorkloadStrategy::LeastLoaded | WorkloadStrategy::PowerOfTwo => Some(LoadView::new(n)),
    };
    let strategy: DynProbeStrategy = match (&cell.strategy, &view) {
        (WorkloadStrategy::Paper(strategy), _) => Arc::clone(strategy),
        (WorkloadStrategy::LeastLoaded, Some(view)) => {
            universal_strategy(LeastLoadedScan::new(view.clone()))
        }
        (WorkloadStrategy::PowerOfTwo, Some(view)) => {
            universal_strategy(PowerOfTwoScan::new(view.clone()))
        }
        _ => unreachable!("load-aware strategies always carry a view"),
    };
    assert!(
        strategy.supports(cell.system.as_ref()),
        "strategy {} does not support system {}",
        strategy.name(),
        cell.system.name()
    );

    // The engine's own randomness (latencies, service times, arrivals) is
    // seeded per cell; each session's strategy/scenario randomness derives
    // from (base_seed, cell, session) exactly like an eval-plan trial.
    let engine_seed = base_seed
        .rotate_left(17)
        .wrapping_add((cell_index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut scratch = Coloring::all_green(n);
    let report = run_workload(n, &cell.config, engine_seed, |session, ledger, now| {
        // Publish the ledger's current scores so load-aware strategies see
        // the backlog this session would join.
        if let Some(view) = &view {
            for e in 0..n {
                view.set(e, ledger.score(e, now));
            }
        }
        let mut rng = derive_rng(base_seed, cell_index, session);
        cell.source.sample_into(n, session, &mut rng, &mut scratch);
        let run = strategy.run(cell.system.as_ref(), &scratch, &mut rng);
        SessionPlan {
            colors: run.sequence.iter().map(|&e| scratch.color(e)).collect(),
            sequence: run.sequence,
            success: run.witness.is_green(),
        }
    });

    let peak_backlog = (0..n)
        .map(|e| report.ledger.peak_backlog(e))
        .max()
        .unwrap_or(0);
    WorkloadOutcome {
        system: cell.system.name(),
        universe_size: n,
        strategy: cell.strategy.label(),
        workload: cell.workload.clone(),
        scenario: cell.source.label(),
        sessions: report.sessions,
        success_rate: report.success_rate(),
        throughput_per_sec: report.throughput_per_sec(),
        p50_us: report.latency.p50(),
        p95_us: report.latency.p95(),
        p99_us: report.latency.p99(),
        probes_per_session: report.probes_per_session(),
        imbalance: load_imbalance(report.ledger.probes_received()),
        peak_backlog,
    }
}

/// Runs every cell, in parallel across the engine's worker pool, returning
/// outcomes in cell order. Bit-identical for any thread count.
pub fn run_workload_cells(
    engine: &EvalEngine,
    base_seed: u64,
    cells: &[WorkloadCell],
) -> Vec<WorkloadOutcome> {
    let indexed: Vec<(u64, &WorkloadCell)> = cells
        .iter()
        .enumerate()
        .map(|(index, cell)| (index as u64, cell))
        .collect();
    engine.install(|| {
        indexed
            .into_par_iter()
            .map(|(index, cell)| run_cell(base_seed, index, cell))
            .collect()
    })
}

/// Renders outcomes as the standard workload table.
pub fn outcomes_table(outcomes: &[WorkloadOutcome]) -> Table {
    let mut table = Table::new([
        "system",
        "n",
        "strategy",
        "workload",
        "scenario",
        "sessions",
        "ok_rate",
        "thr_per_s",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "probes",
        "imbalance",
    ]);
    for o in outcomes {
        table.add_row(vec![
            o.system.clone(),
            o.universe_size.to_string(),
            o.strategy.clone(),
            o.workload.clone(),
            o.scenario.clone(),
            o.sessions.to_string(),
            format!("{:.3}", o.success_rate),
            format!("{:.1}", o.throughput_per_sec),
            format!("{:.3}", o.p50_us as f64 / 1_000.0),
            format!("{:.3}", o.p95_us as f64 / 1_000.0),
            format!("{:.3}", o.p99_us as f64 / 1_000.0),
            format!("{:.2}", o.probes_per_session),
            format!("{:.2}", o.imbalance),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::erase_system;
    use quorum_probe::strategies::SequentialScan;
    use quorum_systems::Majority;

    fn maj_cells(sessions: usize) -> Vec<WorkloadCell> {
        let system = erase_system(Majority::new(15).unwrap());
        let workloads = standard_workloads(sessions);
        let mut cells = Vec::new();
        for strategy in [
            WorkloadStrategy::Paper(universal_strategy(SequentialScan::new())),
            WorkloadStrategy::LeastLoaded,
            WorkloadStrategy::PowerOfTwo,
        ] {
            for (name, config) in &workloads {
                cells.push(WorkloadCell {
                    system: system.clone(),
                    strategy: strategy.clone(),
                    source: ColoringSource::iid(0.1),
                    workload: (*name).to_string(),
                    config: *config,
                });
            }
        }
        cells
    }

    #[test]
    fn outcomes_are_thread_count_invariant() {
        let cells = maj_cells(300);
        let single = run_workload_cells(&EvalEngine::with_threads(1), 42, &cells);
        let parallel = run_workload_cells(&EvalEngine::with_threads(4), 42, &cells);
        assert_eq!(single, parallel, "workload rows diverged across threads");
        assert_eq!(
            outcomes_table(&single).render(),
            outcomes_table(&parallel).render()
        );
    }

    #[test]
    fn load_aware_strategies_flatten_the_load() {
        let cells = maj_cells(400);
        let outcomes = run_workload_cells(&EvalEngine::with_threads(0), 7, &cells);
        let imbalance_of = |strategy: &str, workload: &str| {
            outcomes
                .iter()
                .find(|o| o.strategy == strategy && o.workload == workload)
                .map(|o| o.imbalance)
                .expect("cell exists")
        };
        for workload in ["open-poisson", "closed-loop"] {
            let sequential = imbalance_of("SequentialScan", workload);
            let least = imbalance_of("LeastLoaded", workload);
            let p2c = imbalance_of("PowerOfTwo", workload);
            // A sequential scan on Maj(15) leaves almost half the universe
            // unprobed; both load-aware orders must spread load far flatter.
            assert!(
                least < sequential,
                "{workload}: least-loaded {least} vs sequential {sequential}"
            );
            assert!(
                p2c < sequential,
                "{workload}: power-of-two {p2c} vs sequential {sequential}"
            );
            assert!(least < 1.25, "{workload}: least-loaded should be near-flat");
        }
    }

    #[test]
    fn outcome_metrics_are_sane() {
        let cells = maj_cells(200);
        let outcomes = run_workload_cells(&EvalEngine::with_threads(0), 11, &cells);
        assert_eq!(outcomes.len(), cells.len());
        for o in &outcomes {
            assert_eq!(o.sessions, 200);
            assert!(o.success_rate > 0.9, "iid(0.1) rarely kills Maj(15)");
            assert!(o.throughput_per_sec > 0.0);
            assert!(o.p50_us <= o.p95_us && o.p95_us <= o.p99_us);
            assert!(o.probes_per_session >= 8.0, "majority needs 8 greens");
            assert!(o.imbalance >= 1.0);
            assert!(o.peak_backlog >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn incompatible_paper_strategy_is_rejected() {
        use quorum_probe::strategies::ProbeCw;
        use quorum_systems::CrumblingWalls;
        let cell = WorkloadCell {
            system: erase_system(Majority::new(5).unwrap()),
            strategy: WorkloadStrategy::Paper(crate::eval::typed_strategy::<CrumblingWalls, _>(
                ProbeCw::new(),
            )),
            source: ColoringSource::iid(0.1),
            workload: "open".into(),
            config: open_poisson_workload(10, SimTime::from_micros(200)),
        };
        let _ = run_workload_cells(&EvalEngine::with_threads(1), 1, &[cell]);
    }
}

//! Failure models: distributions over colorings used to drive experiments.
//!
//! The paper analyses two input regimes — i.i.d. failures and an adversarial
//! worst case. Real deployments sit in between: machines in one rack or
//! availability zone fail *together*, failure probabilities differ per host,
//! and the failure set *churns* over time. This module models all of these
//! as first-class [`FailureModel`] variants so the evaluation engine can
//! sweep from the paper's assumptions to correlated, heterogeneous and
//! time-varying scenarios without changing any probing code.

use std::sync::Arc;

use quorum_analysis::availability::{zone_of, zoned_params};
use quorum_core::{Color, Coloring, WORD_BITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A precomputed fail/repair Markov trajectory: one coloring per time step.
///
/// Each element is an independent two-state Markov chain: a green element
/// turns red with probability `fail` per step, a red element turns green with
/// probability `repair`. The initial coloring is drawn from the stationary
/// distribution (red with probability `fail / (fail + repair)`), so the
/// trajectory is in steady state from step 0 and its time averages estimate
/// stationary expectations without burn-in.
///
/// The whole trajectory is generated **eagerly and sequentially** from the
/// seed at construction time, which is what makes churn experiments
/// bit-identical across engine thread counts: parallel trials only ever read
/// the shared, immutable timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrajectory {
    fail: f64,
    repair: f64,
    seed: u64,
    colorings: Vec<Coloring>,
}

impl ChurnTrajectory {
    /// Generates a trajectory of `steps` colorings for `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `fail`/`repair` are not probabilities, both are zero (the
    /// chain would have no stationary distribution), or `steps == 0`.
    pub fn generate(n: usize, fail: f64, repair: f64, steps: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail),
            "fail must be a probability, got {fail}"
        );
        assert!(
            (0.0..=1.0).contains(&repair),
            "repair must be a probability, got {repair}"
        );
        assert!(
            fail + repair > 0.0,
            "fail and repair cannot both be zero: the chain never moves"
        );
        assert!(steps > 0, "a trajectory needs at least one step");

        let mut rng = StdRng::seed_from_u64(seed);
        let stationary_red = fail / (fail + repair);
        let mut current = Coloring::from_fn(n, |_| {
            if rng.gen_bool(stationary_red) {
                Color::Red
            } else {
                Color::Green
            }
        });
        let mut colorings = Vec::with_capacity(steps);
        colorings.push(current.clone());
        for _ in 1..steps {
            for e in 0..n {
                match current.color(e) {
                    Color::Green => {
                        if rng.gen_bool(fail) {
                            current.set_color(e, Color::Red);
                        }
                    }
                    Color::Red => {
                        if rng.gen_bool(repair) {
                            current.set_color(e, Color::Green);
                        }
                    }
                }
            }
            colorings.push(current.clone());
        }
        ChurnTrajectory {
            fail,
            repair,
            seed,
            colorings,
        }
    }

    /// Universe size of every coloring in the trajectory.
    pub fn universe_size(&self) -> usize {
        self.colorings[0].universe_size()
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.colorings.len()
    }

    /// Whether the trajectory is empty (never: construction requires a step).
    pub fn is_empty(&self) -> bool {
        self.colorings.is_empty()
    }

    /// The per-step fail probability of a green element.
    pub fn fail_rate(&self) -> f64 {
        self.fail
    }

    /// The per-step repair probability of a red element.
    pub fn repair_rate(&self) -> f64 {
        self.repair
    }

    /// The stationary red fraction `fail / (fail + repair)`.
    pub fn stationary_red_fraction(&self) -> f64 {
        self.fail / (self.fail + self.repair)
    }

    /// The coloring at time step `t`, wrapping around modulo the length, so
    /// trial indices beyond the horizon replay the timeline.
    pub fn coloring_at(&self, t: u64) -> &Coloring {
        &self.colorings[(t % self.colorings.len() as u64) as usize]
    }

    /// Iterates over the trajectory's colorings in time order.
    pub fn iter(&self) -> impl Iterator<Item = &Coloring> + '_ {
        self.colorings.iter()
    }
}

/// A generator of colorings (failure patterns) for a universe of `n` elements.
///
/// The first three variants mirror the input models used in the paper; the
/// last three extend them toward production failure regimes:
///
/// * [`FailureModel::Iid`] — every element fails independently with
///   probability `p` (the probabilistic model of Section 3);
/// * [`FailureModel::ExactRedCount`] — a uniformly random coloring with
///   exactly `reds` failed elements (the hard distribution of Theorem 4.2);
/// * [`FailureModel::Fixed`] — a single adversarial coloring, for worst-case
///   probing experiments;
/// * [`FailureModel::Heterogeneous`] — element `e` fails independently with
///   its own probability `probs[e]` (hot spots, mixed hardware);
/// * [`FailureModel::Zoned`] — the universe is partitioned into contiguous
///   zones; a zone fails wholesale with probability `q`, elements of
///   surviving zones fail i.i.d. with probability `p`. Sweeping `q` at a
///   fixed marginal spans independent to fully-correlated failures;
/// * [`FailureModel::Churn`] — a seeded fail/repair Markov trajectory; trial
///   `t` observes the coloring at time step `t`, so mean probe counts are
///   **time averages** along a realistic failure timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Independent failures with probability `p`.
    Iid {
        /// The per-element failure probability.
        p: f64,
    },
    /// Uniformly random coloring with exactly the given number of red
    /// elements.
    ExactRedCount {
        /// Number of failed elements.
        reds: usize,
    },
    /// A fixed coloring returned on every sample.
    Fixed {
        /// The coloring to return.
        coloring: Coloring,
    },
    /// Independent failures with per-element probabilities.
    Heterogeneous {
        /// `probs[e]` is the failure probability of element `e`; the length
        /// pins the universe size.
        probs: Arc<Vec<f64>>,
    },
    /// Correlated zone failures: wholesale with probability `q`, then i.i.d.
    /// `p` inside surviving zones.
    Zoned {
        /// Number of contiguous zones the universe is partitioned into.
        zone_count: usize,
        /// Probability that a zone fails wholesale.
        q: f64,
        /// Failure probability of elements in surviving zones.
        p: f64,
    },
    /// A fail/repair Markov chain: trial `t` sees time step `t`.
    Churn {
        /// The precomputed, seed-deterministic timeline.
        trajectory: Arc<ChurnTrajectory>,
    },
}

impl FailureModel {
    /// Independent failures with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn iid(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::Iid { p }
    }

    /// Exactly `reds` failed elements, uniformly placed.
    pub fn exact_red_count(reds: usize) -> Self {
        FailureModel::ExactRedCount { reds }
    }

    /// Always the given coloring.
    pub fn fixed(coloring: Coloring) -> Self {
        FailureModel::Fixed { coloring }
    }

    /// Independent failures with per-element probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or any entry is not a probability.
    pub fn heterogeneous(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "need at least one element probability");
        for (e, &p) in probs.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&p),
                "probs[{e}] must be a probability, got {p}"
            );
        }
        FailureModel::Heterogeneous {
            probs: Arc::new(probs),
        }
    }

    /// Zone failures: `zone_count` contiguous zones, each failing wholesale
    /// with probability `q`; elements of surviving zones fail i.i.d. with
    /// probability `p`.
    ///
    /// With `q = 0` the model is **exactly** [`FailureModel::iid`] at `p`
    /// (same colorings for the same RNG stream — the zone draws are skipped),
    /// so correlation sweeps anchor bit-for-bit at the independent end.
    ///
    /// # Panics
    ///
    /// Panics if `zone_count == 0` or `q`/`p` are not probabilities.
    pub fn zoned(zone_count: usize, q: f64, p: f64) -> Self {
        assert!(zone_count >= 1, "need at least one zone");
        assert!((0.0..=1.0).contains(&q), "q must be a probability, got {q}");
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::Zoned { zone_count, q, p }
    }

    /// Zone failures parameterised by `(marginal, correlation)`: the
    /// per-element failure probability stays at `marginal` while
    /// `correlation` sweeps from 0 (i.i.d.) to 1 (zones fail wholesale).
    ///
    /// # Panics
    ///
    /// Panics if `zone_count == 0` or either argument is not a probability.
    pub fn zoned_correlated(zone_count: usize, marginal: f64, correlation: f64) -> Self {
        let (q, p) = zoned_params(marginal, correlation);
        FailureModel::zoned(zone_count, q, p)
    }

    /// A churn timeline generated from the given Markov parameters and seed
    /// (see [`ChurnTrajectory::generate`] for panics).
    pub fn churn(n: usize, fail: f64, repair: f64, steps: usize, seed: u64) -> Self {
        FailureModel::Churn {
            trajectory: Arc::new(ChurnTrajectory::generate(n, fail, repair, steps, seed)),
        }
    }

    /// A churn model over an existing (possibly shared) trajectory.
    pub fn churn_trajectory(trajectory: Arc<ChurnTrajectory>) -> Self {
        FailureModel::Churn { trajectory }
    }

    /// Samples a coloring for a universe of `n` elements.
    ///
    /// Time-dependent models ([`FailureModel::Churn`]) observe step 0; use
    /// [`FailureModel::sample_at`] to address a specific trial/time index.
    ///
    /// # Panics
    ///
    /// Panics on the model/universe mismatches documented on
    /// [`FailureModel::sample_into`].
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Coloring {
        self.sample_at(n, 0, rng)
    }

    /// Samples the coloring of trial `trial_index` for a universe of `n`
    /// elements. Only [`FailureModel::Churn`] depends on the index (it is the
    /// time step); every other model ignores it.
    pub fn sample_at<R: Rng + ?Sized>(&self, n: usize, trial_index: u64, rng: &mut R) -> Coloring {
        let mut coloring = Coloring::all_green(0);
        self.sample_into(n, trial_index, rng, &mut coloring);
        coloring
    }

    /// Samples into a caller-owned scratch coloring, avoiding per-trial
    /// allocations in the evaluation hot loop. The scratch is resized to `n`
    /// (a no-alloc reset once its capacity has grown to the largest universe
    /// it has seen).
    ///
    /// # Panics
    ///
    /// Panics if the model is [`FailureModel::ExactRedCount`] with more reds
    /// than elements, [`FailureModel::Fixed`] / [`FailureModel::Heterogeneous`]
    /// / [`FailureModel::Churn`] with a universe that does not match `n`, or
    /// [`FailureModel::Zoned`] with more zones than elements.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        trial_index: u64,
        rng: &mut R,
        out: &mut Coloring,
    ) {
        match self {
            FailureModel::Iid { p } => {
                out.reset(n, Color::Green);
                sample_iid_into(n, *p, rng, out);
            }
            FailureModel::ExactRedCount { reds } => {
                assert!(
                    *reds <= n,
                    "cannot place {reds} red elements in a universe of {n}"
                );
                // Partial Fisher–Yates over the first `reds` positions: start
                // with the reds packed into the prefix (one masked word-range
                // write) and shuffle only the slots a red can occupy. No
                // index vector, no allocation.
                out.reset(n, Color::Green);
                out.set_red_range(0, *reds);
                for i in 0..*reds {
                    let j = rng.gen_range(i..n);
                    out.swap(i, j);
                }
            }
            FailureModel::Fixed { coloring } => {
                assert_eq!(
                    coloring.universe_size(),
                    n,
                    "fixed coloring universe does not match the requested universe"
                );
                out.copy_from(coloring);
            }
            FailureModel::Heterogeneous { probs } => {
                assert_eq!(
                    probs.len(),
                    n,
                    "heterogeneous model has {} per-element probabilities but the universe has {n}",
                    probs.len()
                );
                out.reset(n, Color::Green);
                // Per-element thresholds accumulated into whole words: one
                // masked word write per 64 elements instead of 64 bit writes.
                for word_index in 0..out.word_count() {
                    let start = word_index * WORD_BITS;
                    let take = WORD_BITS.min(n - start.min(n));
                    let mut word = 0u64;
                    for (bit, &p) in probs[start..start + take].iter().enumerate() {
                        if draw_red(rng, p) {
                            word |= 1u64 << bit;
                        }
                    }
                    out.set_red_word(word_index, word);
                }
            }
            FailureModel::Zoned { zone_count, q, p } => {
                assert!(
                    *zone_count <= n,
                    "cannot partition {n} elements into {zone_count} zones"
                );
                out.reset(n, Color::Green);
                if *q == 0.0 {
                    // Exact specialization: no zone draws, so the RNG stream —
                    // and therefore every sampled coloring — matches Iid(p)
                    // bit for bit. Correlation sweeps anchor here.
                    sample_iid_into(n, *p, rng, out);
                    return;
                }
                let mut e = 0usize;
                while e < n {
                    let zone = zone_of(e, n, *zone_count);
                    let zone_end = {
                        let mut end = e + 1;
                        while end < n && zone_of(end, n, *zone_count) == zone {
                            end += 1;
                        }
                        end
                    };
                    if rng.gen_bool(*q) {
                        // Wholesale failure: one masked word-range write.
                        out.set_red_range(e, zone_end);
                    } else {
                        for member in e..zone_end {
                            if draw_red(rng, *p) {
                                out.set_color(member, Color::Red);
                            }
                        }
                    }
                    e = zone_end;
                }
            }
            FailureModel::Churn { trajectory } => {
                assert_eq!(
                    trajectory.universe_size(),
                    n,
                    "churn trajectory universe does not match the requested universe"
                );
                out.copy_from(trajectory.coloring_at(trial_index));
            }
        }
    }

    /// A short label used in reports.
    pub fn label(&self) -> String {
        match self {
            FailureModel::Iid { p } => format!("iid(p={p})"),
            FailureModel::ExactRedCount { reds } => format!("exact-reds({reds})"),
            FailureModel::Fixed { .. } => "fixed".to_string(),
            FailureModel::Heterogeneous { probs } => {
                let mean = probs.iter().sum::<f64>() / probs.len() as f64;
                format!("hetero(mean p={mean:.3})")
            }
            FailureModel::Zoned { zone_count, q, p } => {
                format!("zoned(z={zone_count},q={q:.3},p={p:.3})")
            }
            FailureModel::Churn { trajectory } => format!(
                "churn(fail={:.3},repair={:.3},steps={})",
                trajectory.fail_rate(),
                trajectory.repair_rate(),
                trajectory.len()
            ),
        }
    }
}

/// The `next_u64() < threshold` cutoff realising a Bernoulli(`p`) draw for
/// `p < 1` (probability `⌊p·2⁶⁴⌋ / 2⁶⁴`, exact to within one part in `2⁶⁴`).
#[inline]
fn bernoulli_threshold(p: f64) -> u64 {
    (p * ((u64::MAX as f64) + 1.0)) as u64
}

/// One Bernoulli(`p`) draw as an integer threshold compare — no `f64`
/// conversion of the random word on the hot path.
#[inline]
fn draw_red<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p >= 1.0 {
        true
    } else {
        rng.next_u64() < bernoulli_threshold(p)
    }
}

/// Writes an i.i.d.(`p`) sample over an all-green coloring: per-element
/// threshold compares accumulated into whole words, one masked word write per
/// 64 elements.
fn sample_iid_into<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R, out: &mut Coloring) {
    if p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.fill(Color::Red);
        return;
    }
    let threshold = bernoulli_threshold(p);
    for word_index in 0..out.word_count() {
        let start = word_index * WORD_BITS;
        let take = WORD_BITS.min(n - start.min(n));
        let mut word = 0u64;
        for bit in 0..take {
            if rng.next_u64() < threshold {
                word |= 1u64 << bit;
            }
        }
        out.set_red_word(word_index, word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iid_respects_probability_roughly() {
        let model = FailureModel::iid(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut reds = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            reds += model.sample(20, &mut rng).red_count();
        }
        let rate = reds as f64 / (trials * 20) as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical failure rate {rate}");
    }

    #[test]
    fn iid_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(FailureModel::iid(0.0).sample(10, &mut rng).red_count(), 0);
        assert_eq!(FailureModel::iid(1.0).sample(10, &mut rng).red_count(), 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn iid_validates_p() {
        let _ = FailureModel::iid(1.5);
    }

    #[test]
    fn exact_red_count_is_exact() {
        let model = FailureModel::exact_red_count(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(model.sample(9, &mut rng).red_count(), 4);
        }
    }

    #[test]
    fn exact_red_count_varies_position() {
        let model = FailureModel::exact_red_count(1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(model.sample(6, &mut rng).red_set().to_vec());
        }
        assert_eq!(
            seen.len(),
            6,
            "every position must eventually be the red one"
        );
    }

    #[test]
    fn exact_red_count_placement_is_uniform() {
        // The partial Fisher–Yates must place every 2-subset of 6 positions
        // with equal probability: chi-squared against the uniform over the
        // 15 subsets, generous tolerance for 15k samples.
        let model = FailureModel::exact_red_count(2);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut counts = std::collections::HashMap::new();
        let samples = 15_000usize;
        for _ in 0..samples {
            let reds = model.sample(6, &mut rng).red_set().to_vec();
            *counts.entry(reds).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 15, "every subset must appear");
        let expected = samples as f64 / 15.0;
        for (subset, count) in counts {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.15,
                "subset {subset:?} count {count} deviates {deviation:.3} from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn exact_red_count_validates_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = FailureModel::exact_red_count(7).sample(5, &mut rng);
    }

    #[test]
    fn fixed_returns_the_same_coloring() {
        let coloring = Coloring::all_red(4);
        let model = FailureModel::fixed(coloring.clone());
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(model.sample(4, &mut rng), coloring);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn fixed_validates_universe() {
        let model = FailureModel::fixed(Coloring::all_red(4));
        let mut rng = StdRng::seed_from_u64(7);
        let _ = model.sample(5, &mut rng);
    }

    #[test]
    fn heterogeneous_respects_extreme_elements() {
        let model = FailureModel::heterogeneous(vec![0.0, 1.0, 0.5]);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let coloring = model.sample(3, &mut rng);
            assert!(coloring.is_green(0), "p=0 element can never fail");
            assert!(coloring.is_red(1), "p=1 element always fails");
        }
    }

    #[test]
    #[should_panic(expected = "per-element probabilities")]
    fn heterogeneous_validates_universe() {
        let model = FailureModel::heterogeneous(vec![0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(9);
        let _ = model.sample(3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn heterogeneous_validates_probabilities() {
        let _ = FailureModel::heterogeneous(vec![0.5, 1.5]);
    }

    #[test]
    fn zoned_q_zero_matches_iid_bitwise() {
        // The documented specialization: with q = 0 the zoned model consumes
        // the RNG exactly like Iid(p), so same seed ⇒ same colorings.
        for zone_count in [1usize, 3, 5] {
            let zoned = FailureModel::zoned(zone_count, 0.0, 0.35);
            let iid = FailureModel::iid(0.35);
            let mut rng_a = StdRng::seed_from_u64(10);
            let mut rng_b = StdRng::seed_from_u64(10);
            for trial in 0..40u64 {
                assert_eq!(
                    zoned.sample_at(15, trial, &mut rng_a),
                    iid.sample_at(15, trial, &mut rng_b),
                    "zone_count={zone_count} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn zoned_q_one_fails_whole_zones() {
        let model = FailureModel::zoned(3, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let coloring = model.sample(9, &mut rng);
        assert_eq!(coloring.red_count(), 9, "every zone fails wholesale");
    }

    #[test]
    fn zoned_failures_are_zone_aligned_when_fully_correlated() {
        // p = 0: reds can only arise from wholesale zone failures, so every
        // zone is monochromatic.
        let model = FailureModel::zoned(4, 0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 12;
        for _ in 0..100 {
            let coloring = model.sample(n, &mut rng);
            for e in 1..n {
                if zone_of(e, n, 4) == zone_of(e - 1, n, 4) {
                    assert_eq!(
                        coloring.color(e),
                        coloring.color(e - 1),
                        "zone split a color"
                    );
                }
            }
        }
    }

    #[test]
    fn zoned_correlated_preserves_marginal_rate() {
        let marginal = 0.3;
        for correlation in [0.0, 0.5, 1.0] {
            let model = FailureModel::zoned_correlated(5, marginal, correlation);
            let mut rng = StdRng::seed_from_u64(13);
            let mut reds = 0usize;
            let trials = 4_000;
            let n = 20;
            for _ in 0..trials {
                reds += model.sample(n, &mut rng).red_count();
            }
            let rate = reds as f64 / (trials * n) as f64;
            assert!(
                (rate - marginal).abs() < 0.02,
                "correlation {correlation}: marginal drifted to {rate}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot partition")]
    fn zoned_validates_zone_count_at_sample() {
        let mut rng = StdRng::seed_from_u64(14);
        let _ = FailureModel::zoned(10, 0.5, 0.5).sample(5, &mut rng);
    }

    #[test]
    fn churn_trajectory_is_seed_deterministic() {
        let a = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 77);
        let b = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 77);
        assert_eq!(a, b, "same parameters and seed must replay identically");
        let c = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 78);
        assert_ne!(a, c, "a different seed must change the timeline");
        assert_eq!(a.len(), 64);
        assert_eq!(a.universe_size(), 12);
        assert!(!a.is_empty());
        assert!((a.stationary_red_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn churn_stationary_fraction_holds_along_the_timeline() {
        let trajectory = ChurnTrajectory::generate(50, 0.2, 0.3, 2_000, 5);
        let reds: usize = trajectory.iter().map(Coloring::red_count).sum();
        let rate = reds as f64 / (50 * 2_000) as f64;
        assert!(
            (rate - 0.4).abs() < 0.03,
            "time-averaged red rate {rate} should be near 0.4"
        );
    }

    #[test]
    fn churn_model_replays_the_trajectory_per_trial() {
        let model = FailureModel::churn(8, 0.3, 0.3, 16, 21);
        let trajectory = match &model {
            FailureModel::Churn { trajectory } => Arc::clone(trajectory),
            _ => unreachable!(),
        };
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..40u64 {
            assert_eq!(
                &model.sample_at(8, trial, &mut rng),
                trajectory.coloring_at(trial),
                "trial {trial} must observe its time step (wrapping)"
            );
        }
    }

    #[test]
    fn churn_steps_change_between_consecutive_colorings() {
        let trajectory = ChurnTrajectory::generate(100, 0.5, 0.5, 8, 3);
        let mut changed = false;
        let colorings: Vec<&Coloring> = trajectory.iter().collect();
        for pair in colorings.windows(2) {
            if pair[0] != pair[1] {
                changed = true;
            }
        }
        assert!(changed, "a rate-1/2 chain on 100 elements must move");
    }

    #[test]
    #[should_panic(expected = "cannot both be zero")]
    fn churn_validates_rates() {
        let _ = ChurnTrajectory::generate(5, 0.0, 0.0, 10, 1);
    }

    #[test]
    fn sample_into_reuses_the_scratch_coloring() {
        let mut scratch = Coloring::all_green(0);
        let mut rng = StdRng::seed_from_u64(15);
        for model in [
            FailureModel::iid(0.4),
            FailureModel::exact_red_count(3),
            FailureModel::heterogeneous(vec![0.2; 9]),
            FailureModel::zoned(3, 0.3, 0.2),
            FailureModel::churn(9, 0.2, 0.4, 8, 9),
            FailureModel::fixed(Coloring::all_red(9)),
        ] {
            for trial in 0..10u64 {
                model.sample_into(9, trial, &mut rng, &mut scratch);
                assert_eq!(scratch.universe_size(), 9, "{}", model.label());
            }
            // sample_at routes through sample_into, so the two agree given
            // identical RNG streams.
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            model.sample_into(9, 4, &mut rng_a, &mut scratch);
            assert_eq!(scratch, model.sample_at(9, 4, &mut rng_b));
        }
    }

    #[test]
    fn labels_are_informative() {
        assert!(FailureModel::iid(0.5).label().contains("0.5"));
        assert!(FailureModel::exact_red_count(3).label().contains('3'));
        assert_eq!(FailureModel::fixed(Coloring::all_green(2)).label(), "fixed");
        assert!(FailureModel::heterogeneous(vec![0.2, 0.4])
            .label()
            .contains("hetero"));
        assert!(FailureModel::zoned(4, 0.5, 0.1).label().contains("z=4"));
        assert!(FailureModel::churn(3, 0.1, 0.2, 8, 1)
            .label()
            .contains("churn"));
    }
}

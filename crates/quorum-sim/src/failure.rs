//! Failure models: distributions over colorings used to drive experiments.

use quorum_core::{Color, Coloring, ElementSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// A generator of colorings (failure patterns) for a universe of `n` elements.
///
/// The variants mirror the input models used in the paper:
///
/// * [`FailureModel::Iid`] — every element fails independently with
///   probability `p` (the probabilistic model of Section 3);
/// * [`FailureModel::ExactRedCount`] — a uniformly random coloring with
///   exactly `reds` failed elements (the hard distribution of Theorem 4.2);
/// * [`FailureModel::Fixed`] — a single adversarial coloring, for worst-case
///   probing experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Independent failures with probability `p`.
    Iid {
        /// The per-element failure probability.
        p: f64,
    },
    /// Uniformly random coloring with exactly the given number of red
    /// elements.
    ExactRedCount {
        /// Number of failed elements.
        reds: usize,
    },
    /// A fixed coloring returned on every sample.
    Fixed {
        /// The coloring to return.
        coloring: Coloring,
    },
}

impl FailureModel {
    /// Independent failures with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn iid(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::Iid { p }
    }

    /// Exactly `reds` failed elements, uniformly placed.
    pub fn exact_red_count(reds: usize) -> Self {
        FailureModel::ExactRedCount { reds }
    }

    /// Always the given coloring.
    pub fn fixed(coloring: Coloring) -> Self {
        FailureModel::Fixed { coloring }
    }

    /// Samples a coloring for a universe of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if the model is [`FailureModel::ExactRedCount`] with more reds
    /// than elements, or [`FailureModel::Fixed`] with a coloring of the wrong
    /// universe size.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Coloring {
        match self {
            FailureModel::Iid { p } => Coloring::from_fn(n, |_| {
                if rng.gen_bool(*p) {
                    Color::Red
                } else {
                    Color::Green
                }
            }),
            FailureModel::ExactRedCount { reds } => {
                assert!(
                    *reds <= n,
                    "cannot place {reds} red elements in a universe of {n}"
                );
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                let red_set = ElementSet::from_iter(n, order.into_iter().take(*reds));
                Coloring::from_red_set(&red_set)
            }
            FailureModel::Fixed { coloring } => {
                assert_eq!(
                    coloring.universe_size(),
                    n,
                    "fixed coloring universe does not match the requested universe"
                );
                coloring.clone()
            }
        }
    }

    /// A short label used in reports.
    pub fn label(&self) -> String {
        match self {
            FailureModel::Iid { p } => format!("iid(p={p})"),
            FailureModel::ExactRedCount { reds } => format!("exact-reds({reds})"),
            FailureModel::Fixed { .. } => "fixed".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iid_respects_probability_roughly() {
        let model = FailureModel::iid(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut reds = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            reds += model.sample(20, &mut rng).red_count();
        }
        let rate = reds as f64 / (trials * 20) as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical failure rate {rate}");
    }

    #[test]
    fn iid_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(FailureModel::iid(0.0).sample(10, &mut rng).red_count(), 0);
        assert_eq!(FailureModel::iid(1.0).sample(10, &mut rng).red_count(), 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn iid_validates_p() {
        let _ = FailureModel::iid(1.5);
    }

    #[test]
    fn exact_red_count_is_exact() {
        let model = FailureModel::exact_red_count(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(model.sample(9, &mut rng).red_count(), 4);
        }
    }

    #[test]
    fn exact_red_count_varies_position() {
        let model = FailureModel::exact_red_count(1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(model.sample(6, &mut rng).red_set().to_vec());
        }
        assert_eq!(
            seen.len(),
            6,
            "every position must eventually be the red one"
        );
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn exact_red_count_validates_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = FailureModel::exact_red_count(7).sample(5, &mut rng);
    }

    #[test]
    fn fixed_returns_the_same_coloring() {
        let coloring = Coloring::all_red(4);
        let model = FailureModel::fixed(coloring.clone());
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(model.sample(4, &mut rng), coloring);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn fixed_validates_universe() {
        let model = FailureModel::fixed(Coloring::all_red(4));
        let mut rng = StdRng::seed_from_u64(7);
        let _ = model.sample(5, &mut rng);
    }

    #[test]
    fn labels_are_informative() {
        assert!(FailureModel::iid(0.5).label().contains("0.5"));
        assert!(FailureModel::exact_red_count(3).label().contains('3'));
        assert_eq!(FailureModel::fixed(Coloring::all_green(2)).label(), "fixed");
    }
}

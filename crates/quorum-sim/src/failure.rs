//! Failure models: distributions over colorings used to drive experiments.
//!
//! The paper analyses two input regimes — i.i.d. failures and an adversarial
//! worst case. Real deployments sit in between: machines in one rack or
//! availability zone fail *together*, failure probabilities differ per host,
//! and the failure set *churns* over time. This module models all of these
//! as first-class [`FailureModel`] variants so the evaluation engine can
//! sweep from the paper's assumptions to correlated, heterogeneous and
//! time-varying scenarios without changing any probing code.

use std::sync::Arc;

use quorum_analysis::availability::{zone_of, zoned_params};
use quorum_core::lanes::{bernoulli_lane_words, LANE_TRIALS};
use quorum_core::{Color, Coloring, WORD_BITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A precomputed fail/repair Markov trajectory: one coloring per time step.
///
/// Each element is an independent two-state Markov chain: a green element
/// turns red with probability `fail` per step, a red element turns green with
/// probability `repair`. The initial coloring is drawn from the stationary
/// distribution (red with probability `fail / (fail + repair)`), so the
/// trajectory is in steady state from step 0 and its time averages estimate
/// stationary expectations without burn-in.
///
/// The whole trajectory is generated **eagerly and sequentially** from the
/// seed at construction time, which is what makes churn experiments
/// bit-identical across engine thread counts: parallel trials only ever read
/// the shared, immutable timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrajectory {
    fail: f64,
    repair: f64,
    seed: u64,
    colorings: Vec<Coloring>,
}

impl ChurnTrajectory {
    /// Generates a trajectory of `steps` colorings for `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `fail`/`repair` are not probabilities, both are zero (the
    /// chain would have no stationary distribution), or `steps == 0`.
    pub fn generate(n: usize, fail: f64, repair: f64, steps: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail),
            "fail must be a probability, got {fail}"
        );
        assert!(
            (0.0..=1.0).contains(&repair),
            "repair must be a probability, got {repair}"
        );
        assert!(
            fail + repair > 0.0,
            "fail and repair cannot both be zero: the chain never moves"
        );
        assert!(steps > 0, "a trajectory needs at least one step");

        let mut rng = StdRng::seed_from_u64(seed);
        let stationary_red = fail / (fail + repair);
        let mut current = Coloring::from_fn(n, |_| {
            if rng.gen_bool(stationary_red) {
                Color::Red
            } else {
                Color::Green
            }
        });
        let mut colorings = Vec::with_capacity(steps);
        colorings.push(current.clone());
        for _ in 1..steps {
            for e in 0..n {
                match current.color(e) {
                    Color::Green => {
                        if rng.gen_bool(fail) {
                            current.set_color(e, Color::Red);
                        }
                    }
                    Color::Red => {
                        if rng.gen_bool(repair) {
                            current.set_color(e, Color::Green);
                        }
                    }
                }
            }
            colorings.push(current.clone());
        }
        ChurnTrajectory {
            fail,
            repair,
            seed,
            colorings,
        }
    }

    /// Universe size of every coloring in the trajectory.
    pub fn universe_size(&self) -> usize {
        self.colorings[0].universe_size()
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.colorings.len()
    }

    /// Whether the trajectory is empty (never: construction requires a step).
    pub fn is_empty(&self) -> bool {
        self.colorings.is_empty()
    }

    /// The per-step fail probability of a green element.
    pub fn fail_rate(&self) -> f64 {
        self.fail
    }

    /// The per-step repair probability of a red element.
    pub fn repair_rate(&self) -> f64 {
        self.repair
    }

    /// The stationary red fraction `fail / (fail + repair)`.
    pub fn stationary_red_fraction(&self) -> f64 {
        self.fail / (self.fail + self.repair)
    }

    /// The coloring at time step `t`, wrapping around modulo the length, so
    /// trial indices beyond the horizon replay the timeline.
    pub fn coloring_at(&self, t: u64) -> &Coloring {
        &self.colorings[(t % self.colorings.len() as u64) as usize]
    }

    /// Iterates over the trajectory's colorings in time order.
    pub fn iter(&self) -> impl Iterator<Item = &Coloring> + '_ {
        self.colorings.iter()
    }
}

/// A generator of colorings (failure patterns) for a universe of `n` elements.
///
/// The first three variants mirror the input models used in the paper; the
/// last three extend them toward production failure regimes:
///
/// * [`FailureModel::Iid`] — every element fails independently with
///   probability `p` (the probabilistic model of Section 3);
/// * [`FailureModel::ExactRedCount`] — a uniformly random coloring with
///   exactly `reds` failed elements (the hard distribution of Theorem 4.2);
/// * [`FailureModel::Fixed`] — a single adversarial coloring, for worst-case
///   probing experiments;
/// * [`FailureModel::Heterogeneous`] — element `e` fails independently with
///   its own probability `probs[e]` (hot spots, mixed hardware);
/// * [`FailureModel::Zoned`] — the universe is partitioned into contiguous
///   zones; a zone fails wholesale with probability `q`, elements of
///   surviving zones fail i.i.d. with probability `p`. Sweeping `q` at a
///   fixed marginal spans independent to fully-correlated failures;
/// * [`FailureModel::Churn`] — a seeded fail/repair Markov trajectory; trial
///   `t` observes the coloring at time step `t`, so mean probe counts are
///   **time averages** along a realistic failure timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Independent failures with probability `p`.
    Iid {
        /// The per-element failure probability.
        p: f64,
    },
    /// Uniformly random coloring with exactly the given number of red
    /// elements.
    ExactRedCount {
        /// Number of failed elements.
        reds: usize,
    },
    /// A fixed coloring returned on every sample.
    Fixed {
        /// The coloring to return.
        coloring: Coloring,
    },
    /// Independent failures with per-element probabilities.
    Heterogeneous {
        /// `probs[e]` is the failure probability of element `e`; the length
        /// pins the universe size.
        probs: Arc<Vec<f64>>,
    },
    /// Correlated zone failures: wholesale with probability `q`, then i.i.d.
    /// `p` inside surviving zones.
    Zoned {
        /// Number of contiguous zones the universe is partitioned into.
        zone_count: usize,
        /// Probability that a zone fails wholesale.
        q: f64,
        /// Failure probability of elements in surviving zones.
        p: f64,
    },
    /// A fail/repair Markov chain: trial `t` sees time step `t`.
    Churn {
        /// The precomputed, seed-deterministic timeline.
        trajectory: Arc<ChurnTrajectory>,
    },
}

impl FailureModel {
    /// Independent failures with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn iid(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::Iid { p }
    }

    /// Exactly `reds` failed elements, uniformly placed.
    pub fn exact_red_count(reds: usize) -> Self {
        FailureModel::ExactRedCount { reds }
    }

    /// Always the given coloring.
    pub fn fixed(coloring: Coloring) -> Self {
        FailureModel::Fixed { coloring }
    }

    /// Independent failures with per-element probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or any entry is not a probability.
    pub fn heterogeneous(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "need at least one element probability");
        for (e, &p) in probs.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&p),
                "probs[{e}] must be a probability, got {p}"
            );
        }
        FailureModel::Heterogeneous {
            probs: Arc::new(probs),
        }
    }

    /// Zone failures: `zone_count` contiguous zones, each failing wholesale
    /// with probability `q`; elements of surviving zones fail i.i.d. with
    /// probability `p`.
    ///
    /// With `q = 0` the model is **exactly** [`FailureModel::iid`] at `p`
    /// (same colorings for the same RNG stream — the zone draws are skipped),
    /// so correlation sweeps anchor bit-for-bit at the independent end.
    ///
    /// # Panics
    ///
    /// Panics if `zone_count == 0` or `q`/`p` are not probabilities.
    pub fn zoned(zone_count: usize, q: f64, p: f64) -> Self {
        assert!(zone_count >= 1, "need at least one zone");
        assert!((0.0..=1.0).contains(&q), "q must be a probability, got {q}");
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::Zoned { zone_count, q, p }
    }

    /// Zone failures parameterised by `(marginal, correlation)`: the
    /// per-element failure probability stays at `marginal` while
    /// `correlation` sweeps from 0 (i.i.d.) to 1 (zones fail wholesale).
    ///
    /// # Panics
    ///
    /// Panics if `zone_count == 0` or either argument is not a probability.
    pub fn zoned_correlated(zone_count: usize, marginal: f64, correlation: f64) -> Self {
        let (q, p) = zoned_params(marginal, correlation);
        FailureModel::zoned(zone_count, q, p)
    }

    /// A churn timeline generated from the given Markov parameters and seed
    /// (see [`ChurnTrajectory::generate`] for panics).
    pub fn churn(n: usize, fail: f64, repair: f64, steps: usize, seed: u64) -> Self {
        FailureModel::Churn {
            trajectory: Arc::new(ChurnTrajectory::generate(n, fail, repair, steps, seed)),
        }
    }

    /// A churn model over an existing (possibly shared) trajectory.
    pub fn churn_trajectory(trajectory: Arc<ChurnTrajectory>) -> Self {
        FailureModel::Churn { trajectory }
    }

    /// Samples a coloring for a universe of `n` elements.
    ///
    /// Time-dependent models ([`FailureModel::Churn`]) observe step 0; use
    /// [`FailureModel::sample_at`] to address a specific trial/time index.
    ///
    /// # Panics
    ///
    /// Panics on the model/universe mismatches documented on
    /// [`FailureModel::sample_into`].
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Coloring {
        self.sample_at(n, 0, rng)
    }

    /// Samples the coloring of trial `trial_index` for a universe of `n`
    /// elements. Only [`FailureModel::Churn`] depends on the index (it is the
    /// time step); every other model ignores it.
    pub fn sample_at<R: Rng + ?Sized>(&self, n: usize, trial_index: u64, rng: &mut R) -> Coloring {
        let mut coloring = Coloring::all_green(0);
        self.sample_into(n, trial_index, rng, &mut coloring);
        coloring
    }

    /// Samples into a caller-owned scratch coloring, avoiding per-trial
    /// allocations in the evaluation hot loop. The scratch is resized to `n`
    /// (a no-alloc reset once its capacity has grown to the largest universe
    /// it has seen).
    ///
    /// # Panics
    ///
    /// Panics if the model is [`FailureModel::ExactRedCount`] with more reds
    /// than elements, [`FailureModel::Fixed`] / [`FailureModel::Heterogeneous`]
    /// / [`FailureModel::Churn`] with a universe that does not match `n`, or
    /// [`FailureModel::Zoned`] with more zones than elements.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        trial_index: u64,
        rng: &mut R,
        out: &mut Coloring,
    ) {
        match self {
            FailureModel::Iid { p } => {
                out.reset(n, Color::Green);
                sample_iid_into(n, *p, rng, out);
            }
            FailureModel::ExactRedCount { reds } => {
                assert!(
                    *reds <= n,
                    "cannot place {reds} red elements in a universe of {n}"
                );
                // Partial Fisher–Yates over the first `reds` positions: start
                // with the reds packed into the prefix (one masked word-range
                // write) and shuffle only the slots a red can occupy. No
                // index vector, no allocation.
                out.reset(n, Color::Green);
                out.set_red_range(0, *reds);
                for i in 0..*reds {
                    let j = rng.gen_range(i..n);
                    out.swap(i, j);
                }
            }
            FailureModel::Fixed { coloring } => {
                assert_eq!(
                    coloring.universe_size(),
                    n,
                    "fixed coloring universe does not match the requested universe"
                );
                out.copy_from(coloring);
            }
            FailureModel::Heterogeneous { probs } => {
                assert_eq!(
                    probs.len(),
                    n,
                    "heterogeneous model has {} per-element probabilities but the universe has {n}",
                    probs.len()
                );
                out.reset(n, Color::Green);
                // Per-element thresholds accumulated into whole words: one
                // masked word write per 64 elements instead of 64 bit writes.
                for word_index in 0..out.word_count() {
                    let start = word_index * WORD_BITS;
                    let take = WORD_BITS.min(n - start.min(n));
                    let mut word = 0u64;
                    for (bit, &p) in probs[start..start + take].iter().enumerate() {
                        if draw_red(rng, p) {
                            word |= 1u64 << bit;
                        }
                    }
                    out.set_red_word(word_index, word);
                }
            }
            FailureModel::Zoned { zone_count, q, p } => {
                assert!(
                    *zone_count <= n,
                    "cannot partition {n} elements into {zone_count} zones"
                );
                out.reset(n, Color::Green);
                if *q == 0.0 {
                    // Exact specialization: no zone draws, so the RNG stream —
                    // and therefore every sampled coloring — matches Iid(p)
                    // bit for bit. Correlation sweeps anchor here.
                    sample_iid_into(n, *p, rng, out);
                    return;
                }
                let mut e = 0usize;
                while e < n {
                    let zone = zone_of(e, n, *zone_count);
                    let zone_end = {
                        let mut end = e + 1;
                        while end < n && zone_of(end, n, *zone_count) == zone {
                            end += 1;
                        }
                        end
                    };
                    if rng.gen_bool(*q) {
                        // Wholesale failure: one masked word-range write.
                        out.set_red_range(e, zone_end);
                    } else {
                        for member in e..zone_end {
                            if draw_red(rng, *p) {
                                out.set_color(member, Color::Red);
                            }
                        }
                    }
                    e = zone_end;
                }
            }
            FailureModel::Churn { trajectory } => {
                assert_eq!(
                    trajectory.universe_size(),
                    n,
                    "churn trajectory universe does not match the requested universe"
                );
                out.copy_from(trajectory.coloring_at(trial_index));
            }
        }
    }

    /// Samples an element-major block of **green trial lanes**: bit `t` of
    /// `out[e·width + w]` is 1 iff element `e` is green (alive) in trial
    /// `(first_trial_word + w)·64 + t`, where `width = rngs.len()`.
    ///
    /// This is the block-width bulk counterpart of
    /// [`FailureModel::sample_into`]: one call fills `width · 64` trials for
    /// the whole universe in the layout
    /// [`quorum_core::QuorumSystem::green_quorum_lane_block`] consumes.
    /// Purely RNG-driven models (i.i.d., heterogeneous, zoned) fill lanes
    /// straight from the exact binary-expansion sampler; per-trial structured
    /// models (exact red count, churn, fixed) transpose their colorings into
    /// lanes.
    ///
    /// Stream `w` of `rngs` is consumed element-sequentially and independently
    /// of the other streams, so **the bits are invariant under regrouping**:
    /// filling one trial word at a time or eight at once returns the same
    /// lanes as long as each trial word keeps its own RNG stream. (The lane
    /// fill draws the RNG differently from the scalar sampler, so the
    /// per-trial colorings match [`FailureModel::sample_into`] in
    /// *distribution*, not bit-for-bit.)
    ///
    /// # Panics
    ///
    /// Panics if `rngs` is empty, `out.len() != n · rngs.len()`, or on the
    /// model/universe mismatches documented on [`FailureModel::sample_into`].
    pub fn sample_green_lanes<R: Rng>(
        &self,
        n: usize,
        first_trial_word: u64,
        rngs: &mut [R],
        out: &mut [u64],
    ) {
        let width = rngs.len();
        assert!(width > 0, "need at least one trial-word RNG stream");
        assert_eq!(
            out.len(),
            n * width,
            "green-lane block must hold universe × width words"
        );
        match self {
            FailureModel::Iid { p } => fill_iid_green_lanes(*p, rngs, out),
            FailureModel::Heterogeneous { probs } => {
                assert_eq!(
                    probs.len(),
                    n,
                    "heterogeneous model has {} per-element probabilities but the universe has {n}",
                    probs.len()
                );
                for (slot, &p) in out.chunks_mut(width).zip(probs.iter()) {
                    bernoulli_lane_words(1.0 - p, slot, |i| rngs[i].next_u64());
                }
            }
            FailureModel::Zoned { zone_count, q, p } => {
                assert!(
                    *zone_count <= n,
                    "cannot partition {n} elements into {zone_count} zones"
                );
                if *q == 0.0 {
                    // Same specialization as `sample_into`: no zone draws, the
                    // stream consumption matches the i.i.d. fill exactly.
                    fill_iid_green_lanes(*p, rngs, out);
                    return;
                }
                let mut zone_fail = vec![0u64; width];
                let mut e = 0usize;
                while e < n {
                    let zone = zone_of(e, n, *zone_count);
                    let mut zone_end = e + 1;
                    while zone_end < n && zone_of(zone_end, n, *zone_count) == zone {
                        zone_end += 1;
                    }
                    // One wholesale-failure lane per trial word, ANDed out of
                    // every member's i.i.d. survival lane.
                    bernoulli_lane_words(*q, &mut zone_fail, |i| rngs[i].next_u64());
                    for member in e..zone_end {
                        let slot = &mut out[member * width..(member + 1) * width];
                        bernoulli_lane_words(1.0 - *p, slot, |i| rngs[i].next_u64());
                        for (lane, fail) in slot.iter_mut().zip(&zone_fail) {
                            *lane &= !*fail;
                        }
                    }
                    e = zone_end;
                }
            }
            FailureModel::Fixed { coloring } => {
                assert_eq!(
                    coloring.universe_size(),
                    n,
                    "fixed coloring universe does not match the requested universe"
                );
                for (e, slot) in out.chunks_mut(width).enumerate() {
                    slot.fill(if coloring.is_green(e) { u64::MAX } else { 0 });
                }
            }
            FailureModel::Churn { trajectory } => {
                assert_eq!(
                    trajectory.universe_size(),
                    n,
                    "churn trajectory universe does not match the requested universe"
                );
                out.fill(0);
                for w in 0..width {
                    for t in 0..LANE_TRIALS {
                        let time = (first_trial_word + w as u64) * LANE_TRIALS as u64 + t as u64;
                        let coloring = trajectory.coloring_at(time);
                        for e in 0..n {
                            if coloring.is_green(e) {
                                out[e * width + w] |= 1u64 << t;
                            }
                        }
                    }
                }
            }
            FailureModel::ExactRedCount { reds } => {
                assert!(
                    *reds <= n,
                    "cannot place {reds} red elements in a universe of {n}"
                );
                out.fill(0);
                let mut scratch = Coloring::all_green(n);
                for (w, rng) in rngs.iter_mut().enumerate() {
                    for t in 0..LANE_TRIALS {
                        let time = (first_trial_word + w as u64) * LANE_TRIALS as u64 + t as u64;
                        self.sample_into(n, time, rng, &mut scratch);
                        for e in 0..n {
                            if scratch.is_green(e) {
                                out[e * width + w] |= 1u64 << t;
                            }
                        }
                    }
                }
            }
        }
    }

    /// A short label used in reports.
    pub fn label(&self) -> String {
        match self {
            FailureModel::Iid { p } => format!("iid(p={p})"),
            FailureModel::ExactRedCount { reds } => format!("exact-reds({reds})"),
            FailureModel::Fixed { .. } => "fixed".to_string(),
            FailureModel::Heterogeneous { probs } => {
                let mean = probs.iter().sum::<f64>() / probs.len() as f64;
                format!("hetero(mean p={mean:.3})")
            }
            FailureModel::Zoned { zone_count, q, p } => {
                format!("zoned(z={zone_count},q={q:.3},p={p:.3})")
            }
            FailureModel::Churn { trajectory } => format!(
                "churn(fail={:.3},repair={:.3},steps={})",
                trajectory.fail_rate(),
                trajectory.repair_rate(),
                trajectory.len()
            ),
        }
    }
}

/// The `next_u64() < threshold` cutoff realising a Bernoulli(`p`) draw for
/// `p < 1` (probability `⌊p·2⁶⁴⌋ / 2⁶⁴`, exact to within one part in `2⁶⁴`).
#[inline]
fn bernoulli_threshold(p: f64) -> u64 {
    (p * ((u64::MAX as f64) + 1.0)) as u64
}

/// One Bernoulli(`p`) draw as an integer threshold compare — no `f64`
/// conversion of the random word on the hot path.
#[inline]
fn draw_red<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p >= 1.0 {
        true
    } else {
        rng.next_u64() < bernoulli_threshold(p)
    }
}

/// Fills an element-major green-lane block for i.i.d.(`p_fail`) failures:
/// each element's `width` trial words come from the exact binary-expansion
/// sampler at the survival probability, one independent stream per word.
fn fill_iid_green_lanes<R: Rng>(p_fail: f64, rngs: &mut [R], out: &mut [u64]) {
    let width = rngs.len();
    let green = 1.0 - p_fail;
    for slot in out.chunks_mut(width) {
        bernoulli_lane_words(green, slot, |i| rngs[i].next_u64());
    }
}

/// Writes an i.i.d.(`p`) sample over an all-green coloring: per-element
/// threshold compares accumulated into whole words, one masked word write per
/// 64 elements.
fn sample_iid_into<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R, out: &mut Coloring) {
    if p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.fill(Color::Red);
        return;
    }
    let threshold = bernoulli_threshold(p);
    for word_index in 0..out.word_count() {
        let start = word_index * WORD_BITS;
        let take = WORD_BITS.min(n - start.min(n));
        let mut word = 0u64;
        for bit in 0..take {
            if rng.next_u64() < threshold {
                word |= 1u64 << bit;
            }
        }
        out.set_red_word(word_index, word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iid_respects_probability_roughly() {
        let model = FailureModel::iid(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut reds = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            reds += model.sample(20, &mut rng).red_count();
        }
        let rate = reds as f64 / (trials * 20) as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical failure rate {rate}");
    }

    #[test]
    fn iid_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(FailureModel::iid(0.0).sample(10, &mut rng).red_count(), 0);
        assert_eq!(FailureModel::iid(1.0).sample(10, &mut rng).red_count(), 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn iid_validates_p() {
        let _ = FailureModel::iid(1.5);
    }

    #[test]
    fn exact_red_count_is_exact() {
        let model = FailureModel::exact_red_count(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(model.sample(9, &mut rng).red_count(), 4);
        }
    }

    #[test]
    fn exact_red_count_varies_position() {
        let model = FailureModel::exact_red_count(1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(model.sample(6, &mut rng).red_set().to_vec());
        }
        assert_eq!(
            seen.len(),
            6,
            "every position must eventually be the red one"
        );
    }

    #[test]
    fn exact_red_count_placement_is_uniform() {
        // The partial Fisher–Yates must place every 2-subset of 6 positions
        // with equal probability: chi-squared against the uniform over the
        // 15 subsets, generous tolerance for 15k samples.
        let model = FailureModel::exact_red_count(2);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut counts = std::collections::HashMap::new();
        let samples = 15_000usize;
        for _ in 0..samples {
            let reds = model.sample(6, &mut rng).red_set().to_vec();
            *counts.entry(reds).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 15, "every subset must appear");
        let expected = samples as f64 / 15.0;
        for (subset, count) in counts {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.15,
                "subset {subset:?} count {count} deviates {deviation:.3} from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn exact_red_count_validates_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = FailureModel::exact_red_count(7).sample(5, &mut rng);
    }

    #[test]
    fn fixed_returns_the_same_coloring() {
        let coloring = Coloring::all_red(4);
        let model = FailureModel::fixed(coloring.clone());
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(model.sample(4, &mut rng), coloring);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn fixed_validates_universe() {
        let model = FailureModel::fixed(Coloring::all_red(4));
        let mut rng = StdRng::seed_from_u64(7);
        let _ = model.sample(5, &mut rng);
    }

    #[test]
    fn heterogeneous_respects_extreme_elements() {
        let model = FailureModel::heterogeneous(vec![0.0, 1.0, 0.5]);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let coloring = model.sample(3, &mut rng);
            assert!(coloring.is_green(0), "p=0 element can never fail");
            assert!(coloring.is_red(1), "p=1 element always fails");
        }
    }

    #[test]
    #[should_panic(expected = "per-element probabilities")]
    fn heterogeneous_validates_universe() {
        let model = FailureModel::heterogeneous(vec![0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(9);
        let _ = model.sample(3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn heterogeneous_validates_probabilities() {
        let _ = FailureModel::heterogeneous(vec![0.5, 1.5]);
    }

    #[test]
    fn zoned_q_zero_matches_iid_bitwise() {
        // The documented specialization: with q = 0 the zoned model consumes
        // the RNG exactly like Iid(p), so same seed ⇒ same colorings.
        for zone_count in [1usize, 3, 5] {
            let zoned = FailureModel::zoned(zone_count, 0.0, 0.35);
            let iid = FailureModel::iid(0.35);
            let mut rng_a = StdRng::seed_from_u64(10);
            let mut rng_b = StdRng::seed_from_u64(10);
            for trial in 0..40u64 {
                assert_eq!(
                    zoned.sample_at(15, trial, &mut rng_a),
                    iid.sample_at(15, trial, &mut rng_b),
                    "zone_count={zone_count} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn zoned_q_one_fails_whole_zones() {
        let model = FailureModel::zoned(3, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let coloring = model.sample(9, &mut rng);
        assert_eq!(coloring.red_count(), 9, "every zone fails wholesale");
    }

    #[test]
    fn zoned_failures_are_zone_aligned_when_fully_correlated() {
        // p = 0: reds can only arise from wholesale zone failures, so every
        // zone is monochromatic.
        let model = FailureModel::zoned(4, 0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 12;
        for _ in 0..100 {
            let coloring = model.sample(n, &mut rng);
            for e in 1..n {
                if zone_of(e, n, 4) == zone_of(e - 1, n, 4) {
                    assert_eq!(
                        coloring.color(e),
                        coloring.color(e - 1),
                        "zone split a color"
                    );
                }
            }
        }
    }

    #[test]
    fn zoned_correlated_preserves_marginal_rate() {
        let marginal = 0.3;
        for correlation in [0.0, 0.5, 1.0] {
            let model = FailureModel::zoned_correlated(5, marginal, correlation);
            let mut rng = StdRng::seed_from_u64(13);
            let mut reds = 0usize;
            let trials = 4_000;
            let n = 20;
            for _ in 0..trials {
                reds += model.sample(n, &mut rng).red_count();
            }
            let rate = reds as f64 / (trials * n) as f64;
            assert!(
                (rate - marginal).abs() < 0.02,
                "correlation {correlation}: marginal drifted to {rate}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot partition")]
    fn zoned_validates_zone_count_at_sample() {
        let mut rng = StdRng::seed_from_u64(14);
        let _ = FailureModel::zoned(10, 0.5, 0.5).sample(5, &mut rng);
    }

    #[test]
    fn churn_trajectory_is_seed_deterministic() {
        let a = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 77);
        let b = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 77);
        assert_eq!(a, b, "same parameters and seed must replay identically");
        let c = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 78);
        assert_ne!(a, c, "a different seed must change the timeline");
        assert_eq!(a.len(), 64);
        assert_eq!(a.universe_size(), 12);
        assert!(!a.is_empty());
        assert!((a.stationary_red_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn churn_stationary_fraction_holds_along_the_timeline() {
        let trajectory = ChurnTrajectory::generate(50, 0.2, 0.3, 2_000, 5);
        let reds: usize = trajectory.iter().map(Coloring::red_count).sum();
        let rate = reds as f64 / (50 * 2_000) as f64;
        assert!(
            (rate - 0.4).abs() < 0.03,
            "time-averaged red rate {rate} should be near 0.4"
        );
    }

    #[test]
    fn churn_model_replays_the_trajectory_per_trial() {
        let model = FailureModel::churn(8, 0.3, 0.3, 16, 21);
        let trajectory = match &model {
            FailureModel::Churn { trajectory } => Arc::clone(trajectory),
            _ => unreachable!(),
        };
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..40u64 {
            assert_eq!(
                &model.sample_at(8, trial, &mut rng),
                trajectory.coloring_at(trial),
                "trial {trial} must observe its time step (wrapping)"
            );
        }
    }

    #[test]
    fn churn_steps_change_between_consecutive_colorings() {
        let trajectory = ChurnTrajectory::generate(100, 0.5, 0.5, 8, 3);
        let mut changed = false;
        let colorings: Vec<&Coloring> = trajectory.iter().collect();
        for pair in colorings.windows(2) {
            if pair[0] != pair[1] {
                changed = true;
            }
        }
        assert!(changed, "a rate-1/2 chain on 100 elements must move");
    }

    #[test]
    #[should_panic(expected = "cannot both be zero")]
    fn churn_validates_rates() {
        let _ = ChurnTrajectory::generate(5, 0.0, 0.0, 10, 1);
    }

    #[test]
    fn sample_into_reuses_the_scratch_coloring() {
        let mut scratch = Coloring::all_green(0);
        let mut rng = StdRng::seed_from_u64(15);
        for model in [
            FailureModel::iid(0.4),
            FailureModel::exact_red_count(3),
            FailureModel::heterogeneous(vec![0.2; 9]),
            FailureModel::zoned(3, 0.3, 0.2),
            FailureModel::churn(9, 0.2, 0.4, 8, 9),
            FailureModel::fixed(Coloring::all_red(9)),
        ] {
            for trial in 0..10u64 {
                model.sample_into(9, trial, &mut rng, &mut scratch);
                assert_eq!(scratch.universe_size(), 9, "{}", model.label());
            }
            // sample_at routes through sample_into, so the two agree given
            // identical RNG streams.
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            model.sample_into(9, 4, &mut rng_a, &mut scratch);
            assert_eq!(scratch, model.sample_at(9, 4, &mut rng_b));
        }
    }

    /// Seeds one RNG stream per trial word the way the batched estimators do:
    /// stream `i` depends only on the absolute trial-word index.
    fn lane_streams(first_word: u64, count: usize) -> Vec<StdRng> {
        (0..count)
            .map(|i| StdRng::seed_from_u64(0xABCD_0000 + first_word + i as u64))
            .collect()
    }

    fn all_models(n: usize) -> Vec<FailureModel> {
        vec![
            FailureModel::iid(0.3),
            FailureModel::exact_red_count(n / 3),
            FailureModel::fixed(Coloring::from_fn(n, |e| {
                if e % 3 == 0 {
                    Color::Red
                } else {
                    Color::Green
                }
            })),
            FailureModel::heterogeneous((0..n).map(|e| (e as f64) / (n as f64)).collect()),
            FailureModel::zoned(3, 0.4, 0.2),
            FailureModel::churn(n, 0.2, 0.4, 8, 9),
        ]
    }

    #[test]
    fn green_lanes_are_invariant_under_width_regrouping() {
        // Filling four trial words in one block must equal filling them one
        // word at a time, as long as each word keeps its own RNG stream.
        let n = 19usize;
        for model in all_models(n) {
            let width = 4usize;
            let mut wide = vec![0u64; n * width];
            model.sample_green_lanes(n, 2, &mut lane_streams(2, width), &mut wide);
            for w in 0..width {
                let mut narrow = vec![0u64; n];
                let mut streams = lane_streams(2 + w as u64, 1);
                model.sample_green_lanes(n, 2 + w as u64, &mut streams, &mut narrow);
                for e in 0..n {
                    assert_eq!(
                        wide[e * width + w],
                        narrow[e],
                        "{} word {w} element {e} diverged",
                        model.label()
                    );
                }
            }
        }
    }

    #[test]
    fn green_lanes_match_model_marginals() {
        // Column `t` of the block is one trial; its green rate must match the
        // model's marginal survival probability.
        let n = 40usize;
        let width = 8usize;
        let model = FailureModel::iid(0.3);
        let mut lanes = vec![0u64; n * width];
        model.sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut lanes);
        let greens: u32 = lanes.iter().map(|w| w.count_ones()).sum();
        let rate = greens as f64 / (n * width * 64) as f64;
        assert!((rate - 0.7).abs() < 0.02, "green rate {rate}");
    }

    #[test]
    fn green_lanes_exact_red_count_holds_per_trial() {
        let n = 11usize;
        let reds = 4usize;
        let width = 2usize;
        let model = FailureModel::exact_red_count(reds);
        let mut lanes = vec![0u64; n * width];
        model.sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut lanes);
        for w in 0..width {
            for t in 0..64 {
                let greens = (0..n)
                    .filter(|&e| (lanes[e * width + w] >> t) & 1 == 1)
                    .count();
                assert_eq!(greens, n - reds, "word {w} trial {t}");
            }
        }
    }

    #[test]
    fn green_lanes_zoned_q_zero_matches_iid_bitwise() {
        let n = 15usize;
        let width = 4usize;
        let mut zoned = vec![0u64; n * width];
        let mut iid = vec![0u64; n * width];
        FailureModel::zoned(3, 0.0, 0.35).sample_green_lanes(
            n,
            0,
            &mut lane_streams(0, width),
            &mut zoned,
        );
        FailureModel::iid(0.35).sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut iid);
        assert_eq!(zoned, iid);
    }

    #[test]
    fn green_lanes_zoned_respects_wholesale_failures() {
        // p = 0: reds only arise from wholesale zone failures, so within a
        // zone every element's lane is identical in every trial.
        let n = 12usize;
        let model = FailureModel::zoned(4, 0.5, 0.0);
        let width = 2usize;
        let mut lanes = vec![0u64; n * width];
        model.sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut lanes);
        for e in 1..n {
            if zone_of(e, n, 4) == zone_of(e - 1, n, 4) {
                assert_eq!(
                    &lanes[e * width..(e + 1) * width],
                    &lanes[(e - 1) * width..e * width],
                    "zone split at element {e}"
                );
            }
        }
    }

    #[test]
    fn green_lanes_fixed_and_churn_transpose_their_colorings() {
        let n = 9usize;
        let width = 2usize;
        // Fixed: every trial sees the same coloring.
        let coloring = Coloring::from_fn(n, |e| if e < 4 { Color::Red } else { Color::Green });
        let mut lanes = vec![0u64; n * width];
        FailureModel::fixed(coloring.clone()).sample_green_lanes(
            n,
            5,
            &mut lane_streams(5, width),
            &mut lanes,
        );
        for e in 0..n {
            let expect = if coloring.is_green(e) { u64::MAX } else { 0 };
            assert_eq!(&lanes[e * width..(e + 1) * width], &[expect; 2]);
        }
        // Churn: bit t of word w is the trajectory at time (first + w)·64 + t.
        let model = FailureModel::churn(n, 0.3, 0.3, 16, 21);
        let trajectory = match &model {
            FailureModel::Churn { trajectory } => Arc::clone(trajectory),
            _ => unreachable!(),
        };
        let first_word = 3u64;
        model.sample_green_lanes(
            n,
            first_word,
            &mut lane_streams(first_word, width),
            &mut lanes,
        );
        for w in 0..width {
            for t in 0..64u64 {
                let coloring = trajectory.coloring_at((first_word + w as u64) * 64 + t);
                for e in 0..n {
                    assert_eq!(
                        (lanes[e * width + w] >> t) & 1 == 1,
                        coloring.is_green(e),
                        "word {w} trial {t} element {e}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "universe × width")]
    fn green_lanes_validate_block_shape() {
        let mut lanes = vec![0u64; 5];
        FailureModel::iid(0.5).sample_green_lanes(3, 0, &mut lane_streams(0, 2), &mut lanes);
    }

    #[test]
    fn labels_are_informative() {
        assert!(FailureModel::iid(0.5).label().contains("0.5"));
        assert!(FailureModel::exact_red_count(3).label().contains('3'));
        assert_eq!(FailureModel::fixed(Coloring::all_green(2)).label(), "fixed");
        assert!(FailureModel::heterogeneous(vec![0.2, 0.4])
            .label()
            .contains("hetero"));
        assert!(FailureModel::zoned(4, 0.5, 0.1).label().contains("z=4"));
        assert!(FailureModel::churn(3, 0.1, 0.2, 8, 1)
            .label()
            .contains("churn"));
    }
}

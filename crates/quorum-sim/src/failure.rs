//! Failure models: distributions over colorings used to drive experiments.
//!
//! The paper analyses two input regimes — i.i.d. failures and an adversarial
//! worst case. Real deployments sit in between: machines in one rack or
//! availability zone fail *together*, failure probabilities differ per host,
//! and the failure set *churns* over time. This module models all of these
//! as first-class [`FailureModel`] variants so the evaluation engine can
//! sweep from the paper's assumptions to correlated, heterogeneous and
//! time-varying scenarios without changing any probing code.

use std::sync::{Arc, Mutex};

use quorum_analysis::availability::{zone_of, zoned_params};
use quorum_core::lanes::{bernoulli_lane_words, bernoulli_lanes, LANE_TRIALS};
use quorum_core::{Color, Coloring, ColoringDelta, Organizations, WORD_BITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many replay cursors a [`ChurnTrajectory`] keeps warm for random
/// access. Each cursor is one coloring plus one RNG state, so the cap bounds
/// the trajectory's memory at a handful of cache lines regardless of how many
/// threads stream it.
const MAX_POOLED_CURSORS: usize = 32;

/// A streaming fail/repair Markov trajectory over colorings.
///
/// Each element is an independent two-state Markov chain: a green element
/// turns red with probability `fail` per step, a red element turns green with
/// probability `repair`. The initial coloring is drawn from the stationary
/// distribution (red with probability `fail / (fail + repair)`), so the
/// trajectory is in steady state from step 0 and its time averages estimate
/// stationary expectations without burn-in.
///
/// Steps are **not stored**. The trajectory holds only the step-0 baseline
/// coloring and the RNG state that follows it; every later step is
/// re-derived on demand by word-packed transition sampling (one
/// binary-expansion Bernoulli mask per 64 elements per rate, XORed into the
/// current words). Memory is therefore constant at any horizon — a
/// million-step timeline costs the same as a ten-step one.
///
/// The coloring at step `t` is a pure function of `(seed, t)`, which is what
/// keeps churn experiments bit-identical across engine thread counts:
/// parallel trials that ask for the same step always see the same coloring,
/// however the replay cursors behind [`ChurnTrajectory::coloring_into`] are
/// scheduled. Sequential consumers should prefer [`ChurnTrajectory::walk`],
/// which additionally exposes each step's [`ColoringDelta`] for incremental
/// re-evaluation.
#[derive(Debug)]
pub struct ChurnTrajectory {
    n: usize,
    fail: f64,
    repair: f64,
    seed: u64,
    steps: usize,
    /// The step-0 coloring (stationary draw).
    baseline: Coloring,
    /// The RNG state immediately after drawing the baseline; cloning it
    /// replays the transition stream from step 0 deterministically.
    rng_after_init: StdRng,
    /// Warm replay cursors for random access, most recently used at the back.
    cursors: Mutex<Vec<ChurnCursor>>,
}

/// One replay position: the coloring at `position` and the RNG state ready
/// to advance it to `position + 1`.
#[derive(Debug, Clone)]
struct ChurnCursor {
    position: usize,
    coloring: Coloring,
    rng: StdRng,
}

impl Clone for ChurnTrajectory {
    fn clone(&self) -> Self {
        ChurnTrajectory {
            n: self.n,
            fail: self.fail,
            repair: self.repair,
            seed: self.seed,
            steps: self.steps,
            baseline: self.baseline.clone(),
            rng_after_init: self.rng_after_init.clone(),
            cursors: Mutex::new(Vec::new()),
        }
    }
}

impl PartialEq for ChurnTrajectory {
    /// Two trajectories are equal iff their parameters are: the timeline is
    /// a pure function of `(n, fail, repair, steps, seed)`, so parameter
    /// equality is timeline equality (cursor pools are just caches).
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.fail == other.fail
            && self.repair == other.repair
            && self.seed == other.seed
            && self.steps == other.steps
    }
}

impl ChurnTrajectory {
    /// Creates a trajectory of `steps` colorings for `n` elements. Only the
    /// step-0 baseline is sampled here; later steps stream on demand.
    ///
    /// # Panics
    ///
    /// Panics if `fail`/`repair` are not probabilities, both are zero (the
    /// chain would have no stationary distribution), or `steps == 0`.
    pub fn generate(n: usize, fail: f64, repair: f64, steps: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail),
            "fail must be a probability, got {fail}"
        );
        assert!(
            (0.0..=1.0).contains(&repair),
            "repair must be a probability, got {repair}"
        );
        assert!(
            fail + repair > 0.0,
            "fail and repair cannot both be zero: the chain never moves"
        );
        assert!(steps > 0, "a trajectory needs at least one step");

        let mut rng = StdRng::seed_from_u64(seed);
        let stationary_red = fail / (fail + repair);
        let mut baseline = Coloring::all_green(n);
        fill_word_bernoulli(stationary_red, &mut rng, &mut baseline);
        ChurnTrajectory {
            n,
            fail,
            repair,
            seed,
            steps,
            baseline,
            rng_after_init: rng,
            cursors: Mutex::new(Vec::new()),
        }
    }

    /// Universe size of every coloring in the trajectory.
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// Number of time steps. Never zero — construction requires at least one
    /// step, which is why there is no `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.steps
    }

    /// The per-step fail probability of a green element.
    pub fn fail_rate(&self) -> f64 {
        self.fail
    }

    /// The per-step repair probability of a red element.
    pub fn repair_rate(&self) -> f64 {
        self.repair
    }

    /// The stationary red fraction `fail / (fail + repair)`.
    pub fn stationary_red_fraction(&self) -> f64 {
        self.fail / (self.fail + self.repair)
    }

    /// The seed the timeline is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Writes the coloring at time step `t` (wrapping around modulo the
    /// length, so trial indices beyond the horizon replay the timeline) into
    /// a caller-owned scratch coloring.
    ///
    /// Random access is served by a small pool of warm replay cursors: a
    /// request at step `t` resumes the nearest cursor at or before `t` and
    /// advances it, so the engine's per-shard sequential trial order costs
    /// O(1) amortised steps per trial. The result is independent of cursor
    /// scheduling — step `t` is a pure function of `(seed, t)`.
    pub fn coloring_into(&self, t: u64, out: &mut Coloring) {
        let target = (t % self.steps as u64) as usize;
        let cursor = self.checkout(target);
        out.copy_from(&cursor.coloring);
        self.checkin(cursor);
    }

    /// The coloring at time step `t` (wrapping modulo the length), as an
    /// owned value. Hot paths should prefer [`ChurnTrajectory::coloring_into`]
    /// or [`ChurnTrajectory::walk`].
    pub fn coloring_at(&self, t: u64) -> Coloring {
        let mut out = Coloring::all_green(0);
        self.coloring_into(t, &mut out);
        out
    }

    /// A sequential walker over the timeline that exposes, at every step,
    /// the coloring **and** the [`ColoringDelta`] from the previous step —
    /// the streaming input of incremental (delta) re-evaluation.
    pub fn walk(&self) -> ChurnWalker<'_> {
        ChurnWalker {
            trajectory: self,
            next_step: 0,
            coloring: self.baseline.clone(),
            delta: ColoringDelta::empty(self.n),
            rng: self.rng_after_init.clone(),
        }
    }

    /// Iterates over the trajectory's colorings in time order, yielding owned
    /// snapshots. Memory stays constant; each item is a fresh clone of the
    /// walker's current coloring.
    pub fn iter(&self) -> impl Iterator<Item = Coloring> + '_ {
        let mut walker = self.walk();
        std::iter::from_fn(move || walker.step().map(|(coloring, _)| coloring.clone()))
    }

    /// Visits `count` consecutive absolute time steps starting at `start`,
    /// wrapping modulo the horizon. The callback receives the offset from
    /// `start`, the coloring, and the delta from the previous visited step
    /// (empty on the first visit; a wrap back to step 0 reports the diff
    /// against the final step). Used by the lane fill, which only needs the
    /// flipped bits after its initial broadcast.
    fn visit_range(
        &self,
        start: u64,
        count: usize,
        mut f: impl FnMut(usize, &Coloring, &ColoringDelta),
    ) {
        if count == 0 {
            return;
        }
        let steps = self.steps as u64;
        let mut cursor = self.checkout((start % steps) as usize);
        let mut delta = ColoringDelta::empty(self.n);
        f(0, &cursor.coloring, &delta);
        for i in 1..count {
            let at = (start + i as u64) % steps;
            if at == 0 {
                // Wrap: jump back to the baseline and report the jump as a
                // plain diff — the replay is a cycle, not a Markov step.
                cursor.coloring.diff_into(&self.baseline, &mut delta);
                cursor.coloring.copy_from(&self.baseline);
                cursor.rng = self.rng_after_init.clone();
                cursor.position = 0;
            } else {
                delta.clear();
                let sink = &mut delta;
                step_words(
                    self.fail,
                    self.repair,
                    &mut cursor.rng,
                    &mut cursor.coloring,
                    |w, flips| sink.push_word(w, flips),
                );
                cursor.position += 1;
            }
            f(i, &cursor.coloring, &delta);
        }
        self.checkin(cursor);
    }

    /// A fresh cursor parked at step 0.
    fn fresh_cursor(&self) -> ChurnCursor {
        ChurnCursor {
            position: 0,
            coloring: self.baseline.clone(),
            rng: self.rng_after_init.clone(),
        }
    }

    /// Takes the warm cursor closest at-or-before `target` (or a fresh one)
    /// and advances it to `target`. The advance runs outside the pool lock.
    fn checkout(&self, target: usize) -> ChurnCursor {
        let mut cursor = {
            let mut pool = self.cursors.lock().expect("cursor pool poisoned");
            let best = pool
                .iter()
                .enumerate()
                .filter(|(_, c)| c.position <= target)
                .max_by_key(|&(_, c)| c.position)
                .map(|(i, _)| i);
            match best {
                Some(i) => pool.remove(i),
                None => self.fresh_cursor(),
            }
        };
        while cursor.position < target {
            step_words(
                self.fail,
                self.repair,
                &mut cursor.rng,
                &mut cursor.coloring,
                |_, _| {},
            );
            cursor.position += 1;
        }
        cursor
    }

    /// Returns a cursor to the pool, evicting the least recently used one if
    /// the pool is full (the back of the vector is the warmest).
    fn checkin(&self, cursor: ChurnCursor) {
        let mut pool = self.cursors.lock().expect("cursor pool poisoned");
        pool.push(cursor);
        if pool.len() > MAX_POOLED_CURSORS {
            pool.remove(0);
        }
    }
}

/// A sequential walker over a [`ChurnTrajectory`]: each [`ChurnWalker::step`]
/// advances one time step and lends the coloring plus the delta from the
/// previous step. The first step yields the baseline with an empty delta.
///
/// This is the streaming interface of the delta engine: an incremental
/// evaluator consumes `(coloring, delta)` pairs without the trajectory ever
/// materialising more than one step.
#[derive(Debug)]
pub struct ChurnWalker<'a> {
    trajectory: &'a ChurnTrajectory,
    next_step: usize,
    coloring: Coloring,
    delta: ColoringDelta,
    rng: StdRng,
}

impl ChurnWalker<'_> {
    /// Advances to the next time step and lends `(coloring, delta)`, or
    /// `None` once the horizon is exhausted. The delta takes the previously
    /// yielded coloring to the current one (empty on the first step).
    #[allow(clippy::should_implement_trait)]
    pub fn step(&mut self) -> Option<(&Coloring, &ColoringDelta)> {
        if self.next_step >= self.trajectory.steps {
            return None;
        }
        self.delta.clear();
        if self.next_step > 0 {
            let sink = &mut self.delta;
            step_words(
                self.trajectory.fail,
                self.trajectory.repair,
                &mut self.rng,
                &mut self.coloring,
                |w, flips| sink.push_word(w, flips),
            );
        }
        self.next_step += 1;
        Some((&self.coloring, &self.delta))
    }

    /// The step index of the most recently yielded coloring, if any.
    pub fn position(&self) -> Option<usize> {
        self.next_step.checked_sub(1)
    }

    /// How many steps remain.
    pub fn remaining(&self) -> usize {
        self.trajectory.steps - self.next_step
    }
}

/// Overwrites `out` with an i.i.d. Bernoulli(`p_red`) coloring: one
/// word-packed binary-expansion draw per 64 elements.
fn fill_word_bernoulli<R: Rng + ?Sized>(p_red: f64, rng: &mut R, out: &mut Coloring) {
    for w in 0..out.word_count() {
        out.set_red_word(w, bernoulli_lanes(p_red, || rng.next_u64()));
    }
}

/// Advances a coloring one Markov step with word-packed transition sampling:
/// per 64-element word, one Bernoulli(`fail`) mask and one Bernoulli(`repair`)
/// mask from the binary-expansion sampler, combined into the flip set
/// `(red & repair) | (green & fail)` and XORed in. `on_flips` observes each
/// word's raw flip mask (tail bits possibly set; sinks mask them).
fn step_words<R: Rng + ?Sized>(
    fail: f64,
    repair: f64,
    rng: &mut R,
    coloring: &mut Coloring,
    mut on_flips: impl FnMut(usize, u64),
) {
    for w in 0..coloring.word_count() {
        let fail_mask = bernoulli_lanes(fail, || rng.next_u64());
        let repair_mask = bernoulli_lanes(repair, || rng.next_u64());
        let red = coloring.red_words()[w];
        let flips = (red & repair_mask) | (!red & fail_mask);
        if flips != 0 {
            coloring.set_red_word(w, red ^ flips);
            on_flips(w, flips);
        }
    }
}

/// Draws an ε-resampling delta against `coloring`: each element is selected
/// independently with probability `epsilon`, and every selected element has
/// its color redrawn as Bernoulli(`p_red`) red. The returned delta records
/// only the bits that actually changed, so applying it yields the classical
/// ε-correlated perturbation used in noise-sensitivity analysis.
///
/// Word-packed: two binary-expansion draws per 64 elements (selection mask
/// and redraw mask), independent of how many elements actually flip.
///
/// # Panics
///
/// Panics if `epsilon` or `p_red` is not a probability.
pub fn epsilon_resample_delta<R: Rng + ?Sized>(
    coloring: &Coloring,
    epsilon: f64,
    p_red: f64,
    rng: &mut R,
) -> ColoringDelta {
    assert!(
        (0.0..=1.0).contains(&epsilon),
        "epsilon must be a probability, got {epsilon}"
    );
    assert!(
        (0.0..=1.0).contains(&p_red),
        "p_red must be a probability, got {p_red}"
    );
    let mut delta = ColoringDelta::empty(coloring.universe_size());
    for w in 0..coloring.word_count() {
        let selected = bernoulli_lanes(epsilon, || rng.next_u64());
        let redraw_red = bernoulli_lanes(p_red, || rng.next_u64());
        let red = coloring.red_words()[w];
        delta.push_word(w, selected & (red ^ redraw_red));
    }
    delta
}

/// A generator of colorings (failure patterns) for a universe of `n` elements.
///
/// The first three variants mirror the input models used in the paper; the
/// last three extend them toward production failure regimes:
///
/// * [`FailureModel::Iid`] — every element fails independently with
///   probability `p` (the probabilistic model of Section 3);
/// * [`FailureModel::ExactRedCount`] — a uniformly random coloring with
///   exactly `reds` failed elements (the hard distribution of Theorem 4.2);
/// * [`FailureModel::Fixed`] — a single adversarial coloring, for worst-case
///   probing experiments;
/// * [`FailureModel::Heterogeneous`] — element `e` fails independently with
///   its own probability `probs[e]` (hot spots, mixed hardware);
/// * [`FailureModel::Zoned`] — the universe is partitioned into contiguous
///   zones; a zone fails wholesale with probability `q`, elements of
///   surviving zones fail i.i.d. with probability `p`. Sweeping `q` at a
///   fixed marginal spans independent to fully-correlated failures;
/// * [`FailureModel::OrgZoned`] — the zoned model over explicit
///   [`Organizations`]: whole operators fail together with probability `q`,
///   then i.i.d. `p` among survivors and org-less elements;
/// * [`FailureModel::Churn`] — a seeded fail/repair Markov trajectory; trial
///   `t` observes the coloring at time step `t`, so mean probe counts are
///   **time averages** along a realistic failure timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Independent failures with probability `p`.
    Iid {
        /// The per-element failure probability.
        p: f64,
    },
    /// Uniformly random coloring with exactly the given number of red
    /// elements.
    ExactRedCount {
        /// Number of failed elements.
        reds: usize,
    },
    /// A fixed coloring returned on every sample.
    Fixed {
        /// The coloring to return.
        coloring: Coloring,
    },
    /// Independent failures with per-element probabilities.
    Heterogeneous {
        /// `probs[e]` is the failure probability of element `e`; the length
        /// pins the universe size.
        probs: Arc<Vec<f64>>,
    },
    /// Correlated zone failures: wholesale with probability `q`, then i.i.d.
    /// `p` inside surviving zones.
    Zoned {
        /// Number of contiguous zones the universe is partitioned into.
        zone_count: usize,
        /// Probability that a zone fails wholesale.
        q: f64,
        /// Failure probability of elements in surviving zones.
        p: f64,
    },
    /// Correlated organization failures: whole operators fail together.
    /// Each organization fails wholesale with probability `q`; elements of
    /// surviving organizations — and elements owned by no organization —
    /// fail i.i.d. with probability `p`. The org-structured counterpart of
    /// [`FailureModel::Zoned`]: groups are explicit (and need not be
    /// contiguous) instead of derived from element order.
    OrgZoned {
        /// The organization structure (pins the universe size).
        orgs: Arc<Organizations>,
        /// Probability that an organization fails wholesale.
        q: f64,
        /// Failure probability of elements in surviving organizations.
        p: f64,
    },
    /// A fail/repair Markov chain: trial `t` sees time step `t`.
    Churn {
        /// The seed-deterministic streaming timeline.
        trajectory: Arc<ChurnTrajectory>,
    },
}

impl FailureModel {
    /// Independent failures with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn iid(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::Iid { p }
    }

    /// Exactly `reds` failed elements, uniformly placed.
    pub fn exact_red_count(reds: usize) -> Self {
        FailureModel::ExactRedCount { reds }
    }

    /// Always the given coloring.
    pub fn fixed(coloring: Coloring) -> Self {
        FailureModel::Fixed { coloring }
    }

    /// Independent failures with per-element probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or any entry is not a probability.
    pub fn heterogeneous(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "need at least one element probability");
        for (e, &p) in probs.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&p),
                "probs[{e}] must be a probability, got {p}"
            );
        }
        FailureModel::Heterogeneous {
            probs: Arc::new(probs),
        }
    }

    /// Zone failures: `zone_count` contiguous zones, each failing wholesale
    /// with probability `q`; elements of surviving zones fail i.i.d. with
    /// probability `p`.
    ///
    /// With `q = 0` the model is **exactly** [`FailureModel::iid`] at `p`
    /// (same colorings for the same RNG stream — the zone draws are skipped),
    /// so correlation sweeps anchor bit-for-bit at the independent end.
    ///
    /// # Panics
    ///
    /// Panics if `zone_count == 0` or `q`/`p` are not probabilities.
    pub fn zoned(zone_count: usize, q: f64, p: f64) -> Self {
        assert!(zone_count >= 1, "need at least one zone");
        assert!((0.0..=1.0).contains(&q), "q must be a probability, got {q}");
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::Zoned { zone_count, q, p }
    }

    /// Zone failures parameterised by `(marginal, correlation)`: the
    /// per-element failure probability stays at `marginal` while
    /// `correlation` sweeps from 0 (i.i.d.) to 1 (zones fail wholesale).
    ///
    /// # Panics
    ///
    /// Panics if `zone_count == 0` or either argument is not a probability.
    pub fn zoned_correlated(zone_count: usize, marginal: f64, correlation: f64) -> Self {
        let (q, p) = zoned_params(marginal, correlation);
        FailureModel::zoned(zone_count, q, p)
    }

    /// Organization failures: each org of `orgs` fails wholesale with
    /// probability `q`; elements of surviving organizations (and
    /// independent, org-less elements) fail i.i.d. with probability `p`.
    ///
    /// With `q = 0` the model is **exactly** [`FailureModel::iid`] at `p`
    /// (same colorings for the same RNG stream — the org draws are skipped),
    /// so correlation sweeps anchor bit-for-bit at the independent end.
    ///
    /// # Panics
    ///
    /// Panics if `q`/`p` are not probabilities.
    pub fn org_zoned(orgs: Arc<Organizations>, q: f64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "q must be a probability, got {q}");
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        FailureModel::OrgZoned { orgs, q, p }
    }

    /// Organization failures parameterised by `(marginal, correlation)`: the
    /// per-element failure probability stays at `marginal` while
    /// `correlation` sweeps from 0 (i.i.d.) to 1 (organizations fail
    /// wholesale). Mirrors [`FailureModel::zoned_correlated`].
    ///
    /// # Panics
    ///
    /// Panics if either argument is not a probability.
    pub fn org_zoned_correlated(orgs: Arc<Organizations>, marginal: f64, correlation: f64) -> Self {
        let (q, p) = zoned_params(marginal, correlation);
        FailureModel::org_zoned(orgs, q, p)
    }

    /// A churn timeline generated from the given Markov parameters and seed
    /// (see [`ChurnTrajectory::generate`] for panics).
    pub fn churn(n: usize, fail: f64, repair: f64, steps: usize, seed: u64) -> Self {
        FailureModel::Churn {
            trajectory: Arc::new(ChurnTrajectory::generate(n, fail, repair, steps, seed)),
        }
    }

    /// A churn model over an existing (possibly shared) trajectory.
    pub fn churn_trajectory(trajectory: Arc<ChurnTrajectory>) -> Self {
        FailureModel::Churn { trajectory }
    }

    /// Samples a coloring for a universe of `n` elements.
    ///
    /// Time-dependent models ([`FailureModel::Churn`]) observe step 0; use
    /// [`FailureModel::sample_at`] to address a specific trial/time index.
    ///
    /// # Panics
    ///
    /// Panics on the model/universe mismatches documented on
    /// [`FailureModel::sample_into`].
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Coloring {
        self.sample_at(n, 0, rng)
    }

    /// Samples the coloring of trial `trial_index` for a universe of `n`
    /// elements. Only [`FailureModel::Churn`] depends on the index (it is the
    /// time step); every other model ignores it.
    pub fn sample_at<R: Rng + ?Sized>(&self, n: usize, trial_index: u64, rng: &mut R) -> Coloring {
        let mut coloring = Coloring::all_green(0);
        self.sample_into(n, trial_index, rng, &mut coloring);
        coloring
    }

    /// Samples into a caller-owned scratch coloring, avoiding per-trial
    /// allocations in the evaluation hot loop. The scratch is resized to `n`
    /// (a no-alloc reset once its capacity has grown to the largest universe
    /// it has seen).
    ///
    /// # Panics
    ///
    /// Panics if the model is [`FailureModel::ExactRedCount`] with more reds
    /// than elements, [`FailureModel::Fixed`] / [`FailureModel::Heterogeneous`]
    /// / [`FailureModel::Churn`] / [`FailureModel::OrgZoned`] with a universe
    /// that does not match `n`, or [`FailureModel::Zoned`] with more zones
    /// than elements.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        trial_index: u64,
        rng: &mut R,
        out: &mut Coloring,
    ) {
        match self {
            FailureModel::Iid { p } => {
                out.reset(n, Color::Green);
                sample_iid_into(n, *p, rng, out);
            }
            FailureModel::ExactRedCount { reds } => {
                assert!(
                    *reds <= n,
                    "cannot place {reds} red elements in a universe of {n}"
                );
                // Partial Fisher–Yates over the first `reds` positions: start
                // with the reds packed into the prefix (one masked word-range
                // write) and shuffle only the slots a red can occupy. No
                // index vector, no allocation.
                out.reset(n, Color::Green);
                out.set_red_range(0, *reds);
                for i in 0..*reds {
                    let j = rng.gen_range(i..n);
                    out.swap(i, j);
                }
            }
            FailureModel::Fixed { coloring } => {
                assert_eq!(
                    coloring.universe_size(),
                    n,
                    "fixed coloring universe does not match the requested universe"
                );
                out.copy_from(coloring);
            }
            FailureModel::Heterogeneous { probs } => {
                assert_eq!(
                    probs.len(),
                    n,
                    "heterogeneous model has {} per-element probabilities but the universe has {n}",
                    probs.len()
                );
                out.reset(n, Color::Green);
                // Per-element thresholds accumulated into whole words: one
                // masked word write per 64 elements instead of 64 bit writes.
                for word_index in 0..out.word_count() {
                    let start = word_index * WORD_BITS;
                    let take = WORD_BITS.min(n - start.min(n));
                    let mut word = 0u64;
                    for (bit, &p) in probs[start..start + take].iter().enumerate() {
                        if draw_red(rng, p) {
                            word |= 1u64 << bit;
                        }
                    }
                    out.set_red_word(word_index, word);
                }
            }
            FailureModel::Zoned { zone_count, q, p } => {
                assert!(
                    *zone_count <= n,
                    "cannot partition {n} elements into {zone_count} zones"
                );
                out.reset(n, Color::Green);
                if *q == 0.0 {
                    // Exact specialization: no zone draws, so the RNG stream —
                    // and therefore every sampled coloring — matches Iid(p)
                    // bit for bit. Correlation sweeps anchor here.
                    sample_iid_into(n, *p, rng, out);
                    return;
                }
                let mut e = 0usize;
                while e < n {
                    let zone = zone_of(e, n, *zone_count);
                    let zone_end = {
                        let mut end = e + 1;
                        while end < n && zone_of(end, n, *zone_count) == zone {
                            end += 1;
                        }
                        end
                    };
                    if rng.gen_bool(*q) {
                        // Wholesale failure: one masked word-range write.
                        out.set_red_range(e, zone_end);
                    } else {
                        for member in e..zone_end {
                            if draw_red(rng, *p) {
                                out.set_color(member, Color::Red);
                            }
                        }
                    }
                    e = zone_end;
                }
            }
            FailureModel::OrgZoned { orgs, q, p } => {
                assert_eq!(
                    orgs.universe_size(),
                    n,
                    "organization structure universe does not match the requested universe"
                );
                out.reset(n, Color::Green);
                if *q == 0.0 {
                    // Exact specialization: no org draws, so the RNG stream —
                    // and therefore every sampled coloring — matches Iid(p)
                    // bit for bit. Correlation sweeps anchor here.
                    sample_iid_into(n, *p, rng, out);
                    return;
                }
                // Organizations in declaration order, then the independent
                // elements in ascending order — a fixed draw order keeps the
                // model seed-deterministic.
                for g in 0..orgs.group_count() {
                    if rng.gen_bool(*q) {
                        for &member in orgs.members(g) {
                            out.set_color(member, Color::Red);
                        }
                    } else {
                        for &member in orgs.members(g) {
                            if draw_red(rng, *p) {
                                out.set_color(member, Color::Red);
                            }
                        }
                    }
                }
                for e in 0..n {
                    if orgs.group_of(e).is_none() && draw_red(rng, *p) {
                        out.set_color(e, Color::Red);
                    }
                }
            }
            FailureModel::Churn { trajectory } => {
                assert_eq!(
                    trajectory.universe_size(),
                    n,
                    "churn trajectory universe does not match the requested universe"
                );
                trajectory.coloring_into(trial_index, out);
            }
        }
    }

    /// Samples an element-major block of **green trial lanes**: bit `t` of
    /// `out[e·width + w]` is 1 iff element `e` is green (alive) in trial
    /// `(first_trial_word + w)·64 + t`, where `width = rngs.len()`.
    ///
    /// This is the block-width bulk counterpart of
    /// [`FailureModel::sample_into`]: one call fills `width · 64` trials for
    /// the whole universe in the layout
    /// [`quorum_core::QuorumSystem::green_quorum_lane_block`] consumes.
    /// Purely RNG-driven models (i.i.d., heterogeneous, zoned) fill lanes
    /// straight from the exact binary-expansion sampler; per-trial structured
    /// models (exact red count, churn, fixed) transpose their colorings into
    /// lanes. The churn transpose is delta-driven: each trial word broadcasts
    /// its first coloring, then XORs `!0 << t` into the lane of every element
    /// that flips at offset `t` — work proportional to actual churn, not to
    /// `width · 64 · n`.
    ///
    /// Stream `w` of `rngs` is consumed element-sequentially and independently
    /// of the other streams, so **the bits are invariant under regrouping**:
    /// filling one trial word at a time or eight at once returns the same
    /// lanes as long as each trial word keeps its own RNG stream. (The lane
    /// fill draws the RNG differently from the scalar sampler, so the
    /// per-trial colorings match [`FailureModel::sample_into`] in
    /// *distribution*, not bit-for-bit.)
    ///
    /// # Panics
    ///
    /// Panics if `rngs` is empty, `out.len() != n · rngs.len()`, or on the
    /// model/universe mismatches documented on [`FailureModel::sample_into`].
    pub fn sample_green_lanes<R: Rng>(
        &self,
        n: usize,
        first_trial_word: u64,
        rngs: &mut [R],
        out: &mut [u64],
    ) {
        let width = rngs.len();
        assert!(width > 0, "need at least one trial-word RNG stream");
        assert_eq!(
            out.len(),
            n * width,
            "green-lane block must hold universe × width words"
        );
        match self {
            FailureModel::Iid { p } => fill_iid_green_lanes(*p, rngs, out),
            FailureModel::Heterogeneous { probs } => {
                assert_eq!(
                    probs.len(),
                    n,
                    "heterogeneous model has {} per-element probabilities but the universe has {n}",
                    probs.len()
                );
                for (slot, &p) in out.chunks_mut(width).zip(probs.iter()) {
                    bernoulli_lane_words(1.0 - p, slot, |i| rngs[i].next_u64());
                }
            }
            FailureModel::Zoned { zone_count, q, p } => {
                assert!(
                    *zone_count <= n,
                    "cannot partition {n} elements into {zone_count} zones"
                );
                if *q == 0.0 {
                    // Same specialization as `sample_into`: no zone draws, the
                    // stream consumption matches the i.i.d. fill exactly.
                    fill_iid_green_lanes(*p, rngs, out);
                    return;
                }
                let mut zone_fail = vec![0u64; width];
                let mut e = 0usize;
                while e < n {
                    let zone = zone_of(e, n, *zone_count);
                    let mut zone_end = e + 1;
                    while zone_end < n && zone_of(zone_end, n, *zone_count) == zone {
                        zone_end += 1;
                    }
                    // One wholesale-failure lane per trial word, ANDed out of
                    // every member's i.i.d. survival lane.
                    bernoulli_lane_words(*q, &mut zone_fail, |i| rngs[i].next_u64());
                    for member in e..zone_end {
                        let slot = &mut out[member * width..(member + 1) * width];
                        bernoulli_lane_words(1.0 - *p, slot, |i| rngs[i].next_u64());
                        for (lane, fail) in slot.iter_mut().zip(&zone_fail) {
                            *lane &= !*fail;
                        }
                    }
                    e = zone_end;
                }
            }
            FailureModel::OrgZoned { orgs, q, p } => {
                assert_eq!(
                    orgs.universe_size(),
                    n,
                    "organization structure universe does not match the requested universe"
                );
                if *q == 0.0 {
                    // Same specialization as `sample_into`: no org draws, the
                    // stream consumption matches the i.i.d. fill exactly.
                    fill_iid_green_lanes(*p, rngs, out);
                    return;
                }
                // One wholesale-failure lane per org per trial word, ANDed
                // out of every member's i.i.d. survival lane; then the
                // independent elements, in ascending order.
                let mut org_fail = vec![0u64; width];
                for g in 0..orgs.group_count() {
                    bernoulli_lane_words(*q, &mut org_fail, |i| rngs[i].next_u64());
                    for &member in orgs.members(g) {
                        let slot = &mut out[member * width..(member + 1) * width];
                        bernoulli_lane_words(1.0 - *p, slot, |i| rngs[i].next_u64());
                        for (lane, fail) in slot.iter_mut().zip(&org_fail) {
                            *lane &= !*fail;
                        }
                    }
                }
                for e in 0..n {
                    if orgs.group_of(e).is_none() {
                        let slot = &mut out[e * width..(e + 1) * width];
                        bernoulli_lane_words(1.0 - *p, slot, |i| rngs[i].next_u64());
                    }
                }
            }
            FailureModel::Fixed { coloring } => {
                assert_eq!(
                    coloring.universe_size(),
                    n,
                    "fixed coloring universe does not match the requested universe"
                );
                for (e, slot) in out.chunks_mut(width).enumerate() {
                    slot.fill(if coloring.is_green(e) { u64::MAX } else { 0 });
                }
            }
            FailureModel::Churn { trajectory } => {
                assert_eq!(
                    trajectory.universe_size(),
                    n,
                    "churn trajectory universe does not match the requested universe"
                );
                let start = first_trial_word * LANE_TRIALS as u64;
                trajectory.visit_range(start, width * LANE_TRIALS, |i, coloring, delta| {
                    let w = i / LANE_TRIALS;
                    let t = i % LANE_TRIALS;
                    if t == 0 {
                        // Trial-word start: broadcast the current coloring
                        // into bits 0..64 of every element's lane word.
                        for e in 0..n {
                            out[e * width + w] = if coloring.is_green(e) { u64::MAX } else { 0 };
                        }
                    } else {
                        // A flip at offset t toggles bits t.. of the lane:
                        // later offsets re-toggle, so bit k always carries
                        // the parity of flips in 1..=k over the broadcast.
                        for e in delta.flipped_elements() {
                            out[e * width + w] ^= u64::MAX << t;
                        }
                    }
                });
            }
            FailureModel::ExactRedCount { reds } => {
                assert!(
                    *reds <= n,
                    "cannot place {reds} red elements in a universe of {n}"
                );
                out.fill(0);
                let mut scratch = Coloring::all_green(n);
                for (w, rng) in rngs.iter_mut().enumerate() {
                    for t in 0..LANE_TRIALS {
                        let time = (first_trial_word + w as u64) * LANE_TRIALS as u64 + t as u64;
                        self.sample_into(n, time, rng, &mut scratch);
                        for e in 0..n {
                            if scratch.is_green(e) {
                                out[e * width + w] |= 1u64 << t;
                            }
                        }
                    }
                }
            }
        }
    }

    /// A short label used in reports.
    pub fn label(&self) -> String {
        match self {
            FailureModel::Iid { p } => format!("iid(p={p})"),
            FailureModel::ExactRedCount { reds } => format!("exact-reds({reds})"),
            FailureModel::Fixed { .. } => "fixed".to_string(),
            FailureModel::Heterogeneous { probs } => {
                let mean = probs.iter().sum::<f64>() / probs.len() as f64;
                format!("hetero(mean p={mean:.3})")
            }
            FailureModel::Zoned { zone_count, q, p } => {
                format!("zoned(z={zone_count},q={q:.3},p={p:.3})")
            }
            FailureModel::OrgZoned { orgs, q, p } => {
                format!("org-zoned(g={},q={q:.3},p={p:.3})", orgs.group_count())
            }
            FailureModel::Churn { trajectory } => format!(
                "churn(fail={:.3},repair={:.3},steps={})",
                trajectory.fail_rate(),
                trajectory.repair_rate(),
                trajectory.len()
            ),
        }
    }
}

/// The `next_u64() < threshold` cutoff realising a Bernoulli(`p`) draw for
/// `p < 1` (probability `⌊p·2⁶⁴⌋ / 2⁶⁴`, exact to within one part in `2⁶⁴`).
#[inline]
fn bernoulli_threshold(p: f64) -> u64 {
    (p * ((u64::MAX as f64) + 1.0)) as u64
}

/// One Bernoulli(`p`) draw as an integer threshold compare — no `f64`
/// conversion of the random word on the hot path.
#[inline]
fn draw_red<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p >= 1.0 {
        true
    } else {
        rng.next_u64() < bernoulli_threshold(p)
    }
}

/// Fills an element-major green-lane block for i.i.d.(`p_fail`) failures:
/// each element's `width` trial words come from the exact binary-expansion
/// sampler at the survival probability, one independent stream per word.
fn fill_iid_green_lanes<R: Rng>(p_fail: f64, rngs: &mut [R], out: &mut [u64]) {
    let width = rngs.len();
    let green = 1.0 - p_fail;
    for slot in out.chunks_mut(width) {
        bernoulli_lane_words(green, slot, |i| rngs[i].next_u64());
    }
}

/// Writes an i.i.d.(`p`) sample over an all-green coloring: per-element
/// threshold compares accumulated into whole words, one masked word write per
/// 64 elements.
fn sample_iid_into<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R, out: &mut Coloring) {
    if p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.fill(Color::Red);
        return;
    }
    let threshold = bernoulli_threshold(p);
    for word_index in 0..out.word_count() {
        let start = word_index * WORD_BITS;
        let take = WORD_BITS.min(n - start.min(n));
        let mut word = 0u64;
        for bit in 0..take {
            if rng.next_u64() < threshold {
                word |= 1u64 << bit;
            }
        }
        out.set_red_word(word_index, word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iid_respects_probability_roughly() {
        let model = FailureModel::iid(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut reds = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            reds += model.sample(20, &mut rng).red_count();
        }
        let rate = reds as f64 / (trials * 20) as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical failure rate {rate}");
    }

    #[test]
    fn iid_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(FailureModel::iid(0.0).sample(10, &mut rng).red_count(), 0);
        assert_eq!(FailureModel::iid(1.0).sample(10, &mut rng).red_count(), 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn iid_validates_p() {
        let _ = FailureModel::iid(1.5);
    }

    #[test]
    fn exact_red_count_is_exact() {
        let model = FailureModel::exact_red_count(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(model.sample(9, &mut rng).red_count(), 4);
        }
    }

    #[test]
    fn exact_red_count_varies_position() {
        let model = FailureModel::exact_red_count(1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(model.sample(6, &mut rng).red_set().to_vec());
        }
        assert_eq!(
            seen.len(),
            6,
            "every position must eventually be the red one"
        );
    }

    #[test]
    fn exact_red_count_placement_is_uniform() {
        // The partial Fisher–Yates must place every 2-subset of 6 positions
        // with equal probability: chi-squared against the uniform over the
        // 15 subsets, generous tolerance for 15k samples.
        let model = FailureModel::exact_red_count(2);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut counts = std::collections::HashMap::new();
        let samples = 15_000usize;
        for _ in 0..samples {
            let reds = model.sample(6, &mut rng).red_set().to_vec();
            *counts.entry(reds).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 15, "every subset must appear");
        let expected = samples as f64 / 15.0;
        for (subset, count) in counts {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.15,
                "subset {subset:?} count {count} deviates {deviation:.3} from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn exact_red_count_validates_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = FailureModel::exact_red_count(7).sample(5, &mut rng);
    }

    #[test]
    fn fixed_returns_the_same_coloring() {
        let coloring = Coloring::all_red(4);
        let model = FailureModel::fixed(coloring.clone());
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(model.sample(4, &mut rng), coloring);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn fixed_validates_universe() {
        let model = FailureModel::fixed(Coloring::all_red(4));
        let mut rng = StdRng::seed_from_u64(7);
        let _ = model.sample(5, &mut rng);
    }

    #[test]
    fn heterogeneous_respects_extreme_elements() {
        let model = FailureModel::heterogeneous(vec![0.0, 1.0, 0.5]);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let coloring = model.sample(3, &mut rng);
            assert!(coloring.is_green(0), "p=0 element can never fail");
            assert!(coloring.is_red(1), "p=1 element always fails");
        }
    }

    #[test]
    #[should_panic(expected = "per-element probabilities")]
    fn heterogeneous_validates_universe() {
        let model = FailureModel::heterogeneous(vec![0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(9);
        let _ = model.sample(3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn heterogeneous_validates_probabilities() {
        let _ = FailureModel::heterogeneous(vec![0.5, 1.5]);
    }

    #[test]
    fn zoned_q_zero_matches_iid_bitwise() {
        // The documented specialization: with q = 0 the zoned model consumes
        // the RNG exactly like Iid(p), so same seed ⇒ same colorings.
        for zone_count in [1usize, 3, 5] {
            let zoned = FailureModel::zoned(zone_count, 0.0, 0.35);
            let iid = FailureModel::iid(0.35);
            let mut rng_a = StdRng::seed_from_u64(10);
            let mut rng_b = StdRng::seed_from_u64(10);
            for trial in 0..40u64 {
                assert_eq!(
                    zoned.sample_at(15, trial, &mut rng_a),
                    iid.sample_at(15, trial, &mut rng_b),
                    "zone_count={zone_count} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn zoned_q_one_fails_whole_zones() {
        let model = FailureModel::zoned(3, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let coloring = model.sample(9, &mut rng);
        assert_eq!(coloring.red_count(), 9, "every zone fails wholesale");
    }

    #[test]
    fn zoned_failures_are_zone_aligned_when_fully_correlated() {
        // p = 0: reds can only arise from wholesale zone failures, so every
        // zone is monochromatic.
        let model = FailureModel::zoned(4, 0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 12;
        for _ in 0..100 {
            let coloring = model.sample(n, &mut rng);
            for e in 1..n {
                if zone_of(e, n, 4) == zone_of(e - 1, n, 4) {
                    assert_eq!(
                        coloring.color(e),
                        coloring.color(e - 1),
                        "zone split a color"
                    );
                }
            }
        }
    }

    #[test]
    fn zoned_correlated_preserves_marginal_rate() {
        let marginal = 0.3;
        for correlation in [0.0, 0.5, 1.0] {
            let model = FailureModel::zoned_correlated(5, marginal, correlation);
            let mut rng = StdRng::seed_from_u64(13);
            let mut reds = 0usize;
            let trials = 4_000;
            let n = 20;
            for _ in 0..trials {
                reds += model.sample(n, &mut rng).red_count();
            }
            let rate = reds as f64 / (trials * n) as f64;
            assert!(
                (rate - marginal).abs() < 0.02,
                "correlation {correlation}: marginal drifted to {rate}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot partition")]
    fn zoned_validates_zone_count_at_sample() {
        let mut rng = StdRng::seed_from_u64(14);
        let _ = FailureModel::zoned(10, 0.5, 0.5).sample(5, &mut rng);
    }

    fn three_orgs() -> Arc<Organizations> {
        // Non-contiguous groups plus an independent element (index 4).
        Arc::new(Organizations::new(7, vec![vec![0, 5], vec![1, 6], vec![2, 3]]).unwrap())
    }

    #[test]
    fn org_zoned_q_zero_matches_iid_bitwise() {
        // The documented specialization: with q = 0 the org model consumes
        // the RNG exactly like Iid(p), so same seed ⇒ same colorings.
        let org = FailureModel::org_zoned(three_orgs(), 0.0, 0.35);
        let iid = FailureModel::iid(0.35);
        let mut rng_a = StdRng::seed_from_u64(10);
        let mut rng_b = StdRng::seed_from_u64(10);
        for trial in 0..40u64 {
            assert_eq!(
                org.sample_at(7, trial, &mut rng_a),
                iid.sample_at(7, trial, &mut rng_b),
                "trial={trial}"
            );
        }
    }

    #[test]
    fn org_zoned_failures_are_org_aligned_when_fully_correlated() {
        // p = 0: reds can only arise from wholesale org failures, so every
        // organization is monochromatic even when its members are scattered,
        // and the independent element never fails.
        let orgs = three_orgs();
        let model = FailureModel::org_zoned(orgs.clone(), 0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(12);
        let mut saw_fail = false;
        let mut saw_survive = false;
        for _ in 0..100 {
            let coloring = model.sample(7, &mut rng);
            assert!(coloring.is_green(4), "org-less element failed at p=0");
            for g in 0..orgs.group_count() {
                let members = orgs.members(g);
                let first = coloring.color(members[0]);
                for &member in members {
                    assert_eq!(coloring.color(member), first, "org {g} split a color");
                }
                saw_fail |= first == Color::Red;
                saw_survive |= first == Color::Green;
            }
        }
        assert!(saw_fail && saw_survive, "q=0.5 must show both outcomes");
    }

    #[test]
    fn org_zoned_correlated_preserves_marginal_rate() {
        let orgs = Arc::new(Organizations::contiguous(20, 5).unwrap());
        let marginal = 0.3;
        for correlation in [0.0, 0.5, 1.0] {
            let model = FailureModel::org_zoned_correlated(orgs.clone(), marginal, correlation);
            let mut rng = StdRng::seed_from_u64(13);
            let mut reds = 0usize;
            let trials = 4_000;
            for _ in 0..trials {
                reds += model.sample(20, &mut rng).red_count();
            }
            let rate = reds as f64 / (trials * 20) as f64;
            assert!(
                (rate - marginal).abs() < 0.02,
                "correlation {correlation}: marginal drifted to {rate}"
            );
        }
    }

    #[test]
    fn org_zoned_matches_zoned_on_contiguous_groups() {
        // With the same contiguous layout the two models sample the same
        // distribution; at p = 0 and a shared seed they agree bit-for-bit
        // (identical draw order: one q-draw per group, no member draws).
        let n = 12;
        let zone_count = 4;
        let orgs = Arc::new(Organizations::contiguous(n, zone_count).unwrap());
        for g in 0..zone_count {
            for &member in orgs.members(g) {
                assert_eq!(zone_of(member, n, zone_count), g, "layouts must agree");
            }
        }
        let org_model = FailureModel::org_zoned(orgs, 0.5, 0.0);
        let zoned = FailureModel::zoned(zone_count, 0.5, 0.0);
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        for trial in 0..60u64 {
            assert_eq!(
                org_model.sample_at(n, trial, &mut rng_a),
                zoned.sample_at(n, trial, &mut rng_b),
                "trial={trial}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn org_zoned_validates_universe_at_sample() {
        let mut rng = StdRng::seed_from_u64(14);
        let _ = FailureModel::org_zoned(three_orgs(), 0.5, 0.5).sample(5, &mut rng);
    }

    #[test]
    fn churn_trajectory_is_seed_deterministic() {
        let a = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 77);
        let b = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 77);
        assert_eq!(a, b, "same parameters and seed must replay identically");
        assert!(
            a.iter().eq(b.iter()),
            "materialised timelines must be bit-identical"
        );
        let c = ChurnTrajectory::generate(12, 0.1, 0.4, 64, 78);
        assert_ne!(a, c, "a different seed must change the timeline");
        assert!(
            !a.iter().eq(c.iter()),
            "a different seed must change the colorings themselves"
        );
        assert_eq!(a.len(), 64);
        assert_eq!(a.universe_size(), 12);
        assert_eq!(a.seed(), 77);
        assert!((a.stationary_red_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn churn_stationary_fraction_holds_along_the_timeline() {
        let trajectory = ChurnTrajectory::generate(50, 0.2, 0.3, 2_000, 5);
        let reds: usize = trajectory.iter().map(|c| c.red_count()).sum();
        let rate = reds as f64 / (50 * 2_000) as f64;
        assert!(
            (rate - 0.4).abs() < 0.03,
            "time-averaged red rate {rate} should be near 0.4"
        );
    }

    #[test]
    fn churn_model_replays_the_trajectory_per_trial() {
        let model = FailureModel::churn(8, 0.3, 0.3, 16, 21);
        let trajectory = match &model {
            FailureModel::Churn { trajectory } => Arc::clone(trajectory),
            _ => unreachable!(),
        };
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..40u64 {
            assert_eq!(
                model.sample_at(8, trial, &mut rng),
                trajectory.coloring_at(trial),
                "trial {trial} must observe its time step (wrapping)"
            );
        }
    }

    #[test]
    fn churn_steps_change_between_consecutive_colorings() {
        let trajectory = ChurnTrajectory::generate(100, 0.5, 0.5, 8, 3);
        let colorings: Vec<Coloring> = trajectory.iter().collect();
        let changed = colorings.windows(2).any(|pair| pair[0] != pair[1]);
        assert!(changed, "a rate-1/2 chain on 100 elements must move");
    }

    #[test]
    #[should_panic(expected = "cannot both be zero")]
    fn churn_validates_rates() {
        let _ = ChurnTrajectory::generate(5, 0.0, 0.0, 10, 1);
    }

    #[test]
    fn churn_walker_deltas_replay_the_timeline() {
        // The delta stream must be exact: applying each step's delta to an
        // independently maintained coloring reproduces the walker's coloring
        // bit for bit, and the first delta is empty.
        let trajectory = ChurnTrajectory::generate(130, 0.2, 0.3, 60, 99);
        let mut walker = trajectory.walk();
        let mut replayed: Option<Coloring> = None;
        let mut steps_seen = 0usize;
        while let Some((coloring, delta)) = walker.step() {
            match replayed.as_mut() {
                None => {
                    assert!(delta.is_empty(), "first step must carry no delta");
                    replayed = Some(coloring.clone());
                }
                Some(current) => {
                    current.apply_delta(delta);
                    assert_eq!(current, coloring, "delta replay diverged at a step");
                }
            }
            steps_seen += 1;
        }
        assert_eq!(steps_seen, 60);
        assert!(walker.step().is_none(), "walker must stay exhausted");
    }

    #[test]
    fn churn_random_access_matches_sequential_walk() {
        // coloring_at must be a pure function of (seed, t) no matter which
        // warm cursor serves it: probe out of order, repeatedly, and beyond
        // the horizon (wrapping), against an eagerly collected reference.
        let trajectory = ChurnTrajectory::generate(70, 0.15, 0.35, 24, 7);
        let eager: Vec<Coloring> = trajectory.iter().collect();
        assert_eq!(eager.len(), 24);
        let probes = [23u64, 0, 11, 11, 5, 47, 24, 13, 1, 22, 9, 30];
        for &t in &probes {
            assert_eq!(
                trajectory.coloring_at(t),
                eager[(t % 24) as usize],
                "random access at t={t} diverged"
            );
        }
    }

    #[test]
    fn churn_clone_and_shared_access_agree() {
        let trajectory = ChurnTrajectory::generate(40, 0.1, 0.2, 16, 3);
        let clone = trajectory.clone();
        assert_eq!(trajectory, clone);
        for t in 0..32u64 {
            assert_eq!(trajectory.coloring_at(t), clone.coloring_at(t));
        }
    }

    #[test]
    fn churn_walker_reports_position_and_remaining() {
        let trajectory = ChurnTrajectory::generate(10, 0.2, 0.2, 4, 1);
        let mut walker = trajectory.walk();
        assert_eq!(walker.position(), None);
        assert_eq!(walker.remaining(), 4);
        walker.step();
        assert_eq!(walker.position(), Some(0));
        assert_eq!(walker.remaining(), 3);
        while walker.step().is_some() {}
        assert_eq!(walker.position(), Some(3));
        assert_eq!(walker.remaining(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Delta-replayed churn timelines are bit-identical to the eager
        /// generator for arbitrary parameters, and random access agrees
        /// with both.
        #[test]
        fn prop_delta_replay_matches_eager_generation(
            n in 1usize..140,
            fail_num in 0u32..=8,
            repair_num in 1u32..=8,
            steps in 1usize..48,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let fail = f64::from(fail_num) / 8.0;
            let repair = f64::from(repair_num) / 8.0;
            let trajectory = ChurnTrajectory::generate(n, fail, repair, steps, seed);
            let eager: Vec<Coloring> = trajectory.iter().collect();
            prop_assert_eq!(eager.len(), steps);

            let mut walker = trajectory.walk();
            let mut replayed: Option<Coloring> = None;
            let mut index = 0usize;
            while let Some((coloring, delta)) = walker.step() {
                match replayed.as_mut() {
                    None => replayed = Some(coloring.clone()),
                    Some(current) => current.apply_delta(delta),
                }
                prop_assert_eq!(replayed.as_ref().unwrap(), coloring);
                prop_assert_eq!(coloring, &eager[index]);
                index += 1;
            }
            prop_assert_eq!(index, steps);

            // Random access through the cursor pool, shuffled-ish order.
            for t in [steps as u64 - 1, 0, steps as u64 / 2, 2 * steps as u64 + 1] {
                prop_assert_eq!(
                    trajectory.coloring_at(t),
                    eager[(t % steps as u64) as usize].clone()
                );
            }
        }
    }

    #[test]
    fn epsilon_resample_extremes() {
        let coloring =
            Coloring::from_fn(100, |e| if e % 3 == 0 { Color::Red } else { Color::Green });
        let mut rng = StdRng::seed_from_u64(5);
        // ε = 0: nothing is selected, the delta is empty.
        let delta = epsilon_resample_delta(&coloring, 0.0, 0.5, &mut rng);
        assert!(delta.is_empty());
        // ε = 1, p_red = 1: every element is redrawn red, so the delta
        // flips exactly the green elements.
        let delta = epsilon_resample_delta(&coloring, 1.0, 1.0, &mut rng);
        let mut perturbed = coloring.clone();
        perturbed.apply_delta(&delta);
        assert_eq!(perturbed.red_count(), 100);
        // ε = 1, p_red = 0: everything is redrawn green.
        let delta = epsilon_resample_delta(&coloring, 1.0, 0.0, &mut rng);
        let mut perturbed = coloring.clone();
        perturbed.apply_delta(&delta);
        assert_eq!(perturbed.green_count(), 100);
    }

    #[test]
    fn epsilon_resample_flip_rate_matches_expectation() {
        // A flip requires both selection (prob ε) and a redraw that lands on
        // the opposite color, so on an all-green coloring the expected flip
        // rate is ε·p_red.
        let coloring = Coloring::all_green(200);
        let mut rng = StdRng::seed_from_u64(11);
        let mut flips = 0usize;
        let rounds = 500;
        for _ in 0..rounds {
            flips += epsilon_resample_delta(&coloring, 0.25, 0.5, &mut rng).flip_count();
        }
        let rate = flips as f64 / (200 * rounds) as f64;
        assert!(
            (rate - 0.125).abs() < 0.01,
            "flip rate {rate} should be near ε·p_red = 0.125"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be a probability")]
    fn epsilon_resample_validates_epsilon() {
        let coloring = Coloring::all_green(8);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = epsilon_resample_delta(&coloring, 1.5, 0.5, &mut rng);
    }

    #[test]
    fn noise_sensitivity_of_probe_transcripts_under_resampling() {
        // End-to-end wiring of the noise-sensitivity metric: run a strategy
        // on a base coloring and on its ε-resampled perturbation, and feed
        // the probe transcripts to the quorum-analysis aggregator. At ε = 0
        // the perturbation is the identity, so a deterministic strategy must
        // score exactly zero; at large ε the transcripts must actually move.
        use quorum_analysis::NoiseSensitivity;
        use quorum_probe::run_strategy;
        use quorum_probe::strategies::SequentialScan;
        use quorum_systems::Majority;

        let maj = Majority::new(21).unwrap();
        let model = FailureModel::iid(0.4);
        let strategy = SequentialScan;
        let mut rng = StdRng::seed_from_u64(42);
        let mut zero = NoiseSensitivity::new();
        let mut heavy = NoiseSensitivity::new();
        for trial in 0..30u64 {
            let base = model.sample_at(21, trial, &mut rng);
            for (eps, sens) in [(0.0, &mut zero), (0.8, &mut heavy)] {
                let delta = epsilon_resample_delta(&base, eps, 0.4, &mut rng);
                let mut perturbed = base.clone();
                perturbed.apply_delta(&delta);
                let run_a = run_strategy(&maj, &strategy, &base, &mut rng);
                let run_b = run_strategy(&maj, &strategy, &perturbed, &mut rng);
                sens.record(
                    &run_a.sequence,
                    run_a.witness.is_green(),
                    &run_b.sequence,
                    run_b.witness.is_green(),
                );
            }
        }
        assert_eq!(zero.pairs(), 30);
        assert_eq!(zero.mean_edit_distance(), Some(0.0));
        assert_eq!(zero.verdict_flip_rate(), Some(0.0));
        assert!(
            heavy.mean_edit_distance().unwrap() > 0.5,
            "heavy resampling must disturb the transcripts"
        );
        assert!(heavy.normalized_sensitivity().unwrap() <= 1.0);
    }

    #[test]
    fn sample_into_reuses_the_scratch_coloring() {
        let mut scratch = Coloring::all_green(0);
        let mut rng = StdRng::seed_from_u64(15);
        for model in [
            FailureModel::iid(0.4),
            FailureModel::exact_red_count(3),
            FailureModel::heterogeneous(vec![0.2; 9]),
            FailureModel::zoned(3, 0.3, 0.2),
            FailureModel::churn(9, 0.2, 0.4, 8, 9),
            FailureModel::fixed(Coloring::all_red(9)),
        ] {
            for trial in 0..10u64 {
                model.sample_into(9, trial, &mut rng, &mut scratch);
                assert_eq!(scratch.universe_size(), 9, "{}", model.label());
            }
            // sample_at routes through sample_into, so the two agree given
            // identical RNG streams.
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            model.sample_into(9, 4, &mut rng_a, &mut scratch);
            assert_eq!(scratch, model.sample_at(9, 4, &mut rng_b));
        }
    }

    /// Seeds one RNG stream per trial word the way the batched estimators do:
    /// stream `i` depends only on the absolute trial-word index.
    fn lane_streams(first_word: u64, count: usize) -> Vec<StdRng> {
        (0..count)
            .map(|i| StdRng::seed_from_u64(0xABCD_0000 + first_word + i as u64))
            .collect()
    }

    fn all_models(n: usize) -> Vec<FailureModel> {
        vec![
            FailureModel::iid(0.3),
            FailureModel::exact_red_count(n / 3),
            FailureModel::fixed(Coloring::from_fn(n, |e| {
                if e % 3 == 0 {
                    Color::Red
                } else {
                    Color::Green
                }
            })),
            FailureModel::heterogeneous((0..n).map(|e| (e as f64) / (n as f64)).collect()),
            FailureModel::zoned(3, 0.4, 0.2),
            FailureModel::churn(n, 0.2, 0.4, 8, 9),
        ]
    }

    #[test]
    fn green_lanes_are_invariant_under_width_regrouping() {
        // Filling four trial words in one block must equal filling them one
        // word at a time, as long as each word keeps its own RNG stream.
        let n = 19usize;
        for model in all_models(n) {
            let width = 4usize;
            let mut wide = vec![0u64; n * width];
            model.sample_green_lanes(n, 2, &mut lane_streams(2, width), &mut wide);
            for w in 0..width {
                let mut narrow = vec![0u64; n];
                let mut streams = lane_streams(2 + w as u64, 1);
                model.sample_green_lanes(n, 2 + w as u64, &mut streams, &mut narrow);
                for e in 0..n {
                    assert_eq!(
                        wide[e * width + w],
                        narrow[e],
                        "{} word {w} element {e} diverged",
                        model.label()
                    );
                }
            }
        }
    }

    #[test]
    fn green_lanes_match_model_marginals() {
        // Column `t` of the block is one trial; its green rate must match the
        // model's marginal survival probability.
        let n = 40usize;
        let width = 8usize;
        let model = FailureModel::iid(0.3);
        let mut lanes = vec![0u64; n * width];
        model.sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut lanes);
        let greens: u32 = lanes.iter().map(|w| w.count_ones()).sum();
        let rate = greens as f64 / (n * width * 64) as f64;
        assert!((rate - 0.7).abs() < 0.02, "green rate {rate}");
    }

    #[test]
    fn green_lanes_exact_red_count_holds_per_trial() {
        let n = 11usize;
        let reds = 4usize;
        let width = 2usize;
        let model = FailureModel::exact_red_count(reds);
        let mut lanes = vec![0u64; n * width];
        model.sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut lanes);
        for w in 0..width {
            for t in 0..64 {
                let greens = (0..n)
                    .filter(|&e| (lanes[e * width + w] >> t) & 1 == 1)
                    .count();
                assert_eq!(greens, n - reds, "word {w} trial {t}");
            }
        }
    }

    #[test]
    fn green_lanes_zoned_q_zero_matches_iid_bitwise() {
        let n = 15usize;
        let width = 4usize;
        let mut zoned = vec![0u64; n * width];
        let mut iid = vec![0u64; n * width];
        FailureModel::zoned(3, 0.0, 0.35).sample_green_lanes(
            n,
            0,
            &mut lane_streams(0, width),
            &mut zoned,
        );
        FailureModel::iid(0.35).sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut iid);
        assert_eq!(zoned, iid);
    }

    #[test]
    fn green_lanes_zoned_respects_wholesale_failures() {
        // p = 0: reds only arise from wholesale zone failures, so within a
        // zone every element's lane is identical in every trial.
        let n = 12usize;
        let model = FailureModel::zoned(4, 0.5, 0.0);
        let width = 2usize;
        let mut lanes = vec![0u64; n * width];
        model.sample_green_lanes(n, 0, &mut lane_streams(0, width), &mut lanes);
        for e in 1..n {
            if zone_of(e, n, 4) == zone_of(e - 1, n, 4) {
                assert_eq!(
                    &lanes[e * width..(e + 1) * width],
                    &lanes[(e - 1) * width..e * width],
                    "zone split at element {e}"
                );
            }
        }
    }

    #[test]
    fn green_lanes_fixed_and_churn_transpose_their_colorings() {
        let n = 9usize;
        let width = 2usize;
        // Fixed: every trial sees the same coloring.
        let coloring = Coloring::from_fn(n, |e| if e < 4 { Color::Red } else { Color::Green });
        let mut lanes = vec![0u64; n * width];
        FailureModel::fixed(coloring.clone()).sample_green_lanes(
            n,
            5,
            &mut lane_streams(5, width),
            &mut lanes,
        );
        for e in 0..n {
            let expect = if coloring.is_green(e) { u64::MAX } else { 0 };
            assert_eq!(&lanes[e * width..(e + 1) * width], &[expect; 2]);
        }
        // Churn: bit t of word w is the trajectory at time (first + w)·64 + t.
        let model = FailureModel::churn(n, 0.3, 0.3, 16, 21);
        let trajectory = match &model {
            FailureModel::Churn { trajectory } => Arc::clone(trajectory),
            _ => unreachable!(),
        };
        let first_word = 3u64;
        model.sample_green_lanes(
            n,
            first_word,
            &mut lane_streams(first_word, width),
            &mut lanes,
        );
        for w in 0..width {
            for t in 0..64u64 {
                let coloring = trajectory.coloring_at((first_word + w as u64) * 64 + t);
                for e in 0..n {
                    assert_eq!(
                        (lanes[e * width + w] >> t) & 1 == 1,
                        coloring.is_green(e),
                        "word {w} trial {t} element {e}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "universe × width")]
    fn green_lanes_validate_block_shape() {
        let mut lanes = vec![0u64; 5];
        FailureModel::iid(0.5).sample_green_lanes(3, 0, &mut lane_streams(0, 2), &mut lanes);
    }

    #[test]
    fn labels_are_informative() {
        assert!(FailureModel::iid(0.5).label().contains("0.5"));
        assert!(FailureModel::exact_red_count(3).label().contains('3'));
        assert_eq!(FailureModel::fixed(Coloring::all_green(2)).label(), "fixed");
        assert!(FailureModel::heterogeneous(vec![0.2, 0.4])
            .label()
            .contains("hetero"));
        assert!(FailureModel::zoned(4, 0.5, 0.1).label().contains("z=4"));
        assert!(FailureModel::churn(3, 0.1, 0.2, 8, 1)
            .label()
            .contains("churn"));
    }
}

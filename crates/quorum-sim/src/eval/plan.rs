//! Evaluation plans: declarative batches of `(system, strategy, model)`
//! cells executed by the [`engine`](super::engine).

use std::sync::Arc;

use quorum_core::{Coloring, Organizations};

use super::dynsys::{DynProbeStrategy, DynSystem};
use super::engine::TrialRng;
use crate::{ChurnTrajectory, FailureModel};

/// A coloring generator: `generate(trial_index, cell_rng)`.
pub type ColoringGenerator = Arc<dyn Fn(u64, &mut TrialRng) -> Coloring + Send + Sync>;

/// Where a cell's colorings come from.
#[derive(Clone)]
pub enum ColoringSource {
    /// A named failure model ([`FailureModel::iid`],
    /// [`FailureModel::exact_red_count`], [`FailureModel::fixed`],
    /// [`FailureModel::heterogeneous`], [`FailureModel::zoned`],
    /// [`FailureModel::org_zoned`], [`FailureModel::churn`]).
    Model(FailureModel),
    /// An arbitrary generator, e.g. one of the paper's hard input families.
    Generator {
        /// Label shown in reports (e.g. `"cw-hard"`).
        label: String,
        /// Draws the coloring for trial `trial_index`. Receives the cell's
        /// trial RNG; a generator that instead derives its coloring purely
        /// from `trial_index` (ignoring the RNG) yields *paired* colorings
        /// across cells — the common-random-numbers device for comparing two
        /// strategies on identical inputs.
        generate: ColoringGenerator,
    },
}

impl ColoringSource {
    /// Independent failures with probability `p`.
    pub fn iid(p: f64) -> Self {
        ColoringSource::Model(FailureModel::iid(p))
    }

    /// Exactly `reds` failed elements, uniformly placed.
    pub fn exact_red_count(reds: usize) -> Self {
        ColoringSource::Model(FailureModel::exact_red_count(reds))
    }

    /// Always the given coloring.
    pub fn fixed(coloring: Coloring) -> Self {
        ColoringSource::Model(FailureModel::fixed(coloring))
    }

    /// Independent failures with per-element probabilities (hot spots,
    /// mixed hardware).
    pub fn heterogeneous(probs: Vec<f64>) -> Self {
        ColoringSource::Model(FailureModel::heterogeneous(probs))
    }

    /// Correlated zone failures: `zone_count` contiguous zones failing
    /// wholesale with probability `q`, i.i.d. `p` inside survivors.
    pub fn zoned(zone_count: usize, q: f64, p: f64) -> Self {
        ColoringSource::Model(FailureModel::zoned(zone_count, q, p))
    }

    /// Zone failures parameterised by a fixed per-element marginal and a
    /// correlation strength in `0..=1` (see
    /// [`FailureModel::zoned_correlated`]).
    pub fn zoned_correlated(zone_count: usize, marginal: f64, correlation: f64) -> Self {
        ColoringSource::Model(FailureModel::zoned_correlated(
            zone_count,
            marginal,
            correlation,
        ))
    }

    /// Organization-aligned failures: every group of `orgs` fails wholesale
    /// with probability `q`, and surviving elements fail i.i.d. with `p`
    /// (see [`FailureModel::org_zoned`]).
    pub fn org_zoned(orgs: Arc<Organizations>, q: f64, p: f64) -> Self {
        ColoringSource::Model(FailureModel::org_zoned(orgs, q, p))
    }

    /// Organization failures parameterised by a fixed per-element marginal
    /// and a correlation strength in `0..=1` (see
    /// [`FailureModel::org_zoned_correlated`]).
    pub fn org_zoned_correlated(orgs: Arc<Organizations>, marginal: f64, correlation: f64) -> Self {
        ColoringSource::Model(FailureModel::org_zoned_correlated(
            orgs,
            marginal,
            correlation,
        ))
    }

    /// A churn timeline: trial `t` observes step `t` of a fail/repair Markov
    /// trajectory generated from `seed`, so the cell's mean is a **time
    /// average** over a realistic failure sequence.
    pub fn churn(n: usize, fail: f64, repair: f64, steps: usize, seed: u64) -> Self {
        ColoringSource::Model(FailureModel::churn(n, fail, repair, steps, seed))
    }

    /// A churn source over an existing (possibly shared) trajectory. Cells
    /// sharing one trajectory see identical colorings per trial — the
    /// common-random-numbers device for comparing strategies under churn.
    pub fn churn_trajectory(trajectory: Arc<ChurnTrajectory>) -> Self {
        ColoringSource::Model(FailureModel::churn_trajectory(trajectory))
    }

    /// A custom generator with a report label. The closure draws from the
    /// cell's trial RNG.
    pub fn generator<F>(label: impl Into<String>, generate: F) -> Self
    where
        F: Fn(&mut TrialRng) -> Coloring + Send + Sync + 'static,
    {
        ColoringSource::Generator {
            label: label.into(),
            generate: Arc::new(move |_, rng| generate(rng)),
        }
    }

    /// A generator whose coloring is a pure function of the trial index (via
    /// a private RNG seeded from `pair_seed` and the index). Cells sharing
    /// the same `pair_seed` and label see **identical colorings per trial**,
    /// so two strategies can be compared on the same inputs (common random
    /// numbers); each cell's own RNG still drives strategy randomness.
    pub fn paired_generator<F>(label: impl Into<String>, pair_seed: u64, generate: F) -> Self
    where
        F: Fn(&mut TrialRng) -> Coloring + Send + Sync + 'static,
    {
        ColoringSource::Generator {
            label: label.into(),
            generate: Arc::new(move |trial, _| {
                let mut pair_rng = super::engine::derive_rng(pair_seed, u64::MAX, trial);
                generate(&mut pair_rng)
            }),
        }
    }

    /// The label used in reports.
    pub fn label(&self) -> String {
        match self {
            ColoringSource::Model(model) => model.label(),
            ColoringSource::Generator { label, .. } => label.clone(),
        }
    }

    /// Samples the coloring of trial `trial_index` for a universe of `n`
    /// elements.
    pub fn sample(&self, n: usize, trial_index: u64, rng: &mut TrialRng) -> Coloring {
        match self {
            ColoringSource::Model(model) => model.sample_at(n, trial_index, rng),
            ColoringSource::Generator { generate, .. } => generate(trial_index, rng),
        }
    }

    /// Samples the coloring of trial `trial_index` into a caller-owned
    /// scratch coloring. Model-backed sources are allocation-free (the
    /// engine's hot loop); custom generators still allocate their coloring
    /// and move it into the scratch.
    pub fn sample_into(&self, n: usize, trial_index: u64, rng: &mut TrialRng, out: &mut Coloring) {
        match self {
            ColoringSource::Model(model) => model.sample_into(n, trial_index, rng, out),
            ColoringSource::Generator { generate, .. } => *out = generate(trial_index, rng),
        }
    }
}

/// A custom per-trial Monte-Carlo sampler: `sample(trial_index, rng)`.
pub type CustomSample = Arc<dyn Fn(u64, &mut TrialRng) -> f64 + Send + Sync>;

/// What one cell measures per trial.
#[derive(Clone)]
pub(super) enum CellTask {
    /// Sample a coloring, run the strategy, record the probe count.
    Probe {
        system: DynSystem,
        strategy: DynProbeStrategy,
        source: ColoringSource,
    },
    /// An arbitrary Monte-Carlo quantity (e.g. the urn draws of Lemma 2.8).
    Custom { sample: CustomSample },
}

/// One cell of an [`EvalPlan`]: labels plus the per-trial task.
#[derive(Clone)]
pub struct EvalCell {
    pub(super) system_label: String,
    pub(super) strategy_label: String,
    pub(super) model_label: String,
    pub(super) universe_size: Option<usize>,
    pub(super) trials: usize,
    pub(super) task: CellTask,
}

/// A batch of evaluation cells, executed together by
/// [`EvalEngine::run`](super::engine::EvalEngine::run).
///
/// Results are a pure function of `(plan, base_seed)`: every trial derives
/// its own RNG from `(base_seed, cell_index, trial_index)`, so reports are
/// bit-identical no matter how many threads execute them.
pub struct EvalPlan {
    pub(super) base_seed: u64,
    pub(super) default_trials: usize,
    pub(super) cells: Vec<EvalCell>,
}

impl EvalPlan {
    /// Creates an empty plan with the given base seed and 1000 trials per
    /// cell by default.
    pub fn new(base_seed: u64) -> Self {
        EvalPlan {
            base_seed,
            default_trials: 1_000,
            cells: Vec::new(),
        }
    }

    /// Sets the default number of trials per cell.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "at least one trial is required");
        self.default_trials = trials;
        self
    }

    /// Number of cells queued so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total number of trials across all cells.
    pub fn total_trials(&self) -> usize {
        self.cells.iter().map(|c| c.trials).sum()
    }

    /// Queues a probe cell with the default trial count.
    ///
    /// # Panics
    ///
    /// Panics if `strategy` does not support `system`.
    pub fn probe(
        &mut self,
        system: &DynSystem,
        strategy: &DynProbeStrategy,
        source: ColoringSource,
    ) -> &mut Self {
        let trials = self.default_trials;
        self.probe_with_trials(system, strategy, source, trials)
    }

    /// Queues a probe cell with an explicit trial count.
    ///
    /// # Panics
    ///
    /// Panics if `strategy` does not support `system` or `trials == 0`.
    pub fn probe_with_trials(
        &mut self,
        system: &DynSystem,
        strategy: &DynProbeStrategy,
        source: ColoringSource,
        trials: usize,
    ) -> &mut Self {
        assert!(trials > 0, "at least one trial is required");
        assert!(
            strategy.supports(system.as_ref()),
            "strategy {} does not support system {}",
            strategy.name(),
            system.name()
        );
        self.cells.push(EvalCell {
            system_label: system.name(),
            strategy_label: strategy.name(),
            model_label: source.label(),
            universe_size: Some(system.universe_size()),
            trials,
            task: CellTask::Probe {
                system: Arc::clone(system),
                strategy: Arc::clone(strategy),
                source,
            },
        });
        self
    }

    /// Queues one probe cell per coloring (a worst-case-search layout: the
    /// report's per-cell means can then be maximised).
    pub fn probe_each_coloring(
        &mut self,
        system: &DynSystem,
        strategy: &DynProbeStrategy,
        colorings: &[Coloring],
        trials_per_coloring: usize,
    ) -> &mut Self {
        for coloring in colorings {
            self.probe_with_trials(
                system,
                strategy,
                ColoringSource::fixed(coloring.clone()),
                trials_per_coloring,
            );
        }
        self
    }

    /// Queues every compatible `(system, strategy)` pair under each source.
    pub fn cross(
        &mut self,
        systems: &[DynSystem],
        strategies: &[DynProbeStrategy],
        sources: &[ColoringSource],
    ) -> &mut Self {
        for system in systems {
            for strategy in strategies {
                if !strategy.supports(system.as_ref()) {
                    continue;
                }
                for source in sources {
                    self.probe(system, strategy, source.clone());
                }
            }
        }
        self
    }

    /// Queues the full **scenario matrix**: every compatible `(system,
    /// strategy)` pair under every scenario of `scenarios`, with
    /// time-dependent scenarios (churn) seeded from this plan's base seed so
    /// the whole matrix is a pure function of the plan.
    ///
    /// Scenario sources are built per system (heterogeneous and churn
    /// scenarios need the universe size), which is what makes failure
    /// scenarios first-class plan cells rather than a fixed source list.
    pub fn matrix(
        &mut self,
        systems: &[DynSystem],
        strategies: &[DynProbeStrategy],
        scenarios: &super::registry::ScenarioRegistry,
    ) -> &mut Self {
        let scenario_seed = self.base_seed;
        for system in systems {
            let n = system.universe_size();
            // Build each scenario once per system: strategies then share the
            // same source (and, for churn, the same Arc-ed trajectory), so
            // they are compared on identical failure timelines.
            let sources: Vec<ColoringSource> = scenarios
                .entries()
                .iter()
                .map(|entry| (entry.build)(n, scenario_seed))
                .collect();
            for strategy in strategies {
                if !strategy.supports(system.as_ref()) {
                    continue;
                }
                for source in &sources {
                    self.probe(system, strategy, source.clone());
                }
            }
        }
        self
    }

    /// Queues a custom Monte-Carlo cell: `sample(trial_index, rng)` is
    /// averaged over the cell's trials.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn custom<F>(&mut self, label: impl Into<String>, trials: usize, sample: F) -> &mut Self
    where
        F: Fn(u64, &mut TrialRng) -> f64 + Send + Sync + 'static,
    {
        assert!(trials > 0, "at least one trial is required");
        self.cells.push(EvalCell {
            system_label: "-".into(),
            strategy_label: "-".into(),
            model_label: label.into(),
            universe_size: None,
            trials,
            task: CellTask::Custom {
                sample: Arc::new(sample),
            },
        });
        self
    }
}

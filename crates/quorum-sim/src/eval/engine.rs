//! The parallel trial runner: executes an [`EvalPlan`] into an
//! [`EvalReport`] with deterministic per-trial seed derivation.
//!
//! # Determinism
//!
//! Every trial's RNG is derived as
//! `derive_rng(base_seed, cell_index, trial_index)` — a SplitMix64-style
//! mixing of the three coordinates — so a trial's outcome depends only on
//! the plan and the base seed, never on scheduling. Trials are tiled into
//! per-cell [`Shard`]s executed by an order-preserving `rayon` map, so the
//! report is **bit-identical** for any thread count (including 1) *and* any
//! shard size: sharding changes only which worker computes a value, never
//! the value.
//!
//! # Hot-loop layout
//!
//! Sharding is also the allocation story: each probe shard owns one scratch
//! [`Coloring`] reused across its trials (no `thread_local` machinery), and
//! custom cells never touch a scratch coloring at all. Cell lookup is one
//! index per shard instead of a `partition_point` binary search per trial.

use std::time::{Duration, Instant};

use quorum_analysis::RunningStats;
use quorum_core::Coloring;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

use super::plan::{CellTask, EvalPlan};
use crate::montecarlo::Estimate;
use crate::report::Table;

/// The per-trial generator used throughout the evaluation engine: a
/// single-word SplitMix64 stream whose seeding is one store. Swapping the
/// trial RNG is a one-line change here; every closure type below follows.
pub type TrialRng = SmallRng;

/// Default trials per [`Shard`]: big enough to amortise scratch setup and
/// scheduling, small enough to load-balance cells of a few thousand trials
/// across workers. Override per engine with [`EvalEngine::with_shard_trials`].
pub const DEFAULT_SHARD_TRIALS: usize = 512;

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG for one `(cell, trial)` coordinate of a run.
///
/// The derivation is a pure function of its arguments, which is what makes
/// engine reports independent of thread count and execution order. The
/// returned [`TrialRng`] seeds with a single store, so deriving millions of
/// per-trial generators costs three mixes and a store each.
pub fn derive_rng(base_seed: u64, cell_index: u64, trial_index: u64) -> TrialRng {
    let cell_word = mix(cell_index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    let trial_word = mix(trial_index.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
    TrialRng::seed_from_u64(mix(base_seed ^ cell_word ^ trial_word))
}

/// Runs `trials` independent trials of `f` in parallel with deterministic
/// per-trial RNGs, returning the observed values in trial order.
///
/// This is the shared loop behind every Monte-Carlo estimator in the
/// workspace: `f(trial_index, rng)` must be a pure function of its arguments
/// for results to be reproducible. Trials run in fixed-size chunks; results
/// are identical for any thread count.
pub fn trial_values<F>(trials: usize, base_seed: u64, cell_index: u64, f: F) -> Vec<f64>
where
    F: Fn(u64, &mut TrialRng) -> f64 + Sync,
{
    let starts: Vec<usize> = (0..trials).step_by(DEFAULT_SHARD_TRIALS).collect();
    let chunks: Vec<Vec<f64>> = starts
        .into_par_iter()
        .map(|start| {
            let len = DEFAULT_SHARD_TRIALS.min(trials - start);
            let mut out = Vec::with_capacity(len);
            for trial in start..start + len {
                let mut rng = derive_rng(base_seed, cell_index, trial as u64);
                out.push(f(trial as u64, &mut rng));
            }
            out
        })
        .collect();
    let mut values = Vec::with_capacity(trials);
    for chunk in chunks {
        values.extend(chunk);
    }
    values
}

/// The measured outcome of one [`EvalPlan`] cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The system label (`"-"` for custom cells).
    pub system: String,
    /// The strategy label (`"-"` for custom cells).
    pub strategy: String,
    /// The coloring-source / quantity label.
    pub model: String,
    /// Universe size, when the cell probes a system.
    pub universe_size: Option<usize>,
    /// Number of trials behind the estimate.
    pub trials: usize,
    /// The estimate accumulated over the cell's trials, in trial order.
    pub estimate: Estimate,
}

impl CellReport {
    /// The `(universe size, mean)` point of this cell, ready for power-law
    /// fitting of a sweep.
    ///
    /// # Panics
    ///
    /// Panics on custom cells, which probe no system.
    pub fn fit_point(&self) -> (f64, f64) {
        (
            self.universe_size.expect("fit points require probe cells") as f64,
            self.estimate.mean,
        )
    }
}

/// The `(universe size, mean)` points of a consecutive slice of sweep cells,
/// ready for `fit_power_law`.
///
/// # Panics
///
/// Panics if any cell is a custom cell (no universe size).
pub fn fit_points(cells: &[CellReport]) -> Vec<(f64, f64)> {
    cells.iter().map(CellReport::fit_point).collect()
}

/// The outcome of running an [`EvalPlan`].
///
/// Everything except [`EvalReport::wall`] and [`EvalReport::threads`] is a
/// deterministic function of the plan and its base seed.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// The plan's base seed.
    pub base_seed: u64,
    /// Worker threads used for this run (informational).
    pub threads: usize,
    /// Wall-clock time of the whole run (informational).
    pub wall: Duration,
    /// One report per plan cell, in plan order.
    pub cells: Vec<CellReport>,
}

impl EvalReport {
    /// The deterministic payload of the report: everything except timing and
    /// thread count. Two runs of the same plan and seed produce equal
    /// fingerprints regardless of parallelism.
    pub fn fingerprint(&self) -> (u64, &[CellReport]) {
        (self.base_seed, &self.cells)
    }

    /// The cell with the largest mean, if any (worst-case searches).
    pub fn max_mean_cell(&self) -> Option<&CellReport> {
        self.cells
            .iter()
            .max_by(|a, b| a.estimate.mean.total_cmp(&b.estimate.mean))
    }

    /// Renders the report as a plain-text [`Table`].
    pub fn to_table(&self) -> Table {
        let mut table = Table::new([
            "system", "n", "strategy", "model", "mean", "std_err", "trials",
        ]);
        for cell in &self.cells {
            table.add_row(vec![
                cell.system.clone(),
                cell.universe_size
                    .map_or_else(|| "-".into(), |n| n.to_string()),
                cell.strategy.clone(),
                cell.model.clone(),
                format!("{:.3}", cell.estimate.mean),
                format!("{:.3}", cell.estimate.std_error),
                cell.trials.to_string(),
            ]);
        }
        table
    }
}

/// Executes [`EvalPlan`]s.
#[derive(Debug, Clone, Copy)]
pub struct EvalEngine {
    threads: Option<usize>,
    shard_trials: usize,
}

impl Default for EvalEngine {
    fn default() -> Self {
        EvalEngine::new()
    }
}

/// One cache-sized tile of trials inside a single cell: the unit of parallel
/// work. All shards except a cell's last have exactly
/// [`EvalEngine::shard_trials`] trials. Because every trial derives its own
/// RNG from `(base_seed, cell, trial)`, the shard decomposition affects
/// scheduling and scratch reuse only — never the values produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Index of the plan cell this shard belongs to.
    pub cell_index: usize,
    /// First trial index covered by this shard.
    pub first_trial: u64,
    /// Number of consecutive trials in this shard.
    pub trials: usize,
}

impl EvalEngine {
    /// An engine using all available worker threads.
    pub fn new() -> Self {
        EvalEngine {
            threads: None,
            shard_trials: DEFAULT_SHARD_TRIALS,
        }
    }

    /// An engine pinned to `threads` worker threads (`0` = all cores).
    pub fn with_threads(threads: usize) -> Self {
        EvalEngine {
            threads: if threads == 0 { None } else { Some(threads) },
            shard_trials: DEFAULT_SHARD_TRIALS,
        }
    }

    /// Sets the trials-per-shard tile size (`0` restores the default).
    ///
    /// Reports are bit-identical for every shard size; tuning trades
    /// scheduling granularity against per-shard scratch amortisation.
    pub fn with_shard_trials(mut self, shard_trials: usize) -> Self {
        self.shard_trials = if shard_trials == 0 {
            DEFAULT_SHARD_TRIALS
        } else {
            shard_trials
        };
        self
    }

    /// The trials-per-shard tile size this engine schedules with.
    pub fn shard_trials(&self) -> usize {
        self.shard_trials
    }

    /// The shard decomposition this engine would use for `plan`, in
    /// execution (plan) order.
    pub fn shards(&self, plan: &EvalPlan) -> Vec<Shard> {
        let mut shards = Vec::new();
        for (cell_index, cell) in plan.cells.iter().enumerate() {
            let mut first_trial = 0usize;
            while first_trial < cell.trials {
                let len = self.shard_trials.min(cell.trials - first_trial);
                shards.push(Shard {
                    cell_index,
                    first_trial: first_trial as u64,
                    trials: len,
                });
                first_trial += len;
            }
        }
        shards
    }

    /// The number of worker threads this engine will use.
    pub fn thread_count(&self) -> usize {
        self.threads.unwrap_or_else(rayon::current_num_threads)
    }

    /// Runs `op` with this engine's thread count governing every parallel
    /// iterator inside it — including the legacy estimator entry points
    /// ([`crate::estimate_expected_probes`], [`crate::estimate_worst_case`],
    /// …) that call [`trial_values`] directly.
    ///
    /// An unpinned engine ([`EvalEngine::new`]) runs `op` on the ambient
    /// configuration without building a pool.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        match self.threads {
            None => op(),
            Some(threads) => rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction cannot fail")
                .install(op),
        }
    }

    /// Runs every cell of `plan`, in parallel over per-cell trial shards.
    ///
    /// # Panics
    ///
    /// Propagates panics from strategies that return invalid witnesses.
    pub fn run(&self, plan: &EvalPlan) -> EvalReport {
        let started = Instant::now();
        let threads = self.thread_count();
        let values = self.install(|| self.run_trials(plan));

        // Fold each cell's values, in trial order, into its estimate.
        let mut cells = Vec::with_capacity(plan.cells.len());
        let mut offset = 0usize;
        for cell in &plan.cells {
            let mut stats = RunningStats::new();
            for &value in &values[offset..offset + cell.trials] {
                stats.push(value);
            }
            offset += cell.trials;
            cells.push(CellReport {
                system: cell.system_label.clone(),
                strategy: cell.strategy_label.clone(),
                model: cell.model_label.clone(),
                universe_size: cell.universe_size,
                trials: cell.trials,
                estimate: Estimate::from_stats(&stats),
            });
        }

        EvalReport {
            base_seed: plan.base_seed,
            threads,
            wall: started.elapsed(),
            cells,
        }
    }

    /// Executes all `(cell, trial)` pairs as per-cell shards on one parallel
    /// map, returning every trial value in plan order.
    fn run_trials(&self, plan: &EvalPlan) -> Vec<f64> {
        let shard_values: Vec<Vec<f64>> = self
            .shards(plan)
            .into_par_iter()
            .map(|shard| {
                let cell = &plan.cells[shard.cell_index];
                let mut out = Vec::with_capacity(shard.trials);
                match &cell.task {
                    CellTask::Probe {
                        system,
                        strategy,
                        source,
                    } => {
                        // One scratch coloring per shard, resampled in place:
                        // a single allocation amortised over the whole shard.
                        let mut scratch = Coloring::all_green(system.universe_size());
                        for offset in 0..shard.trials {
                            let trial_index = shard.first_trial + offset as u64;
                            let mut rng =
                                derive_rng(plan.base_seed, shard.cell_index as u64, trial_index);
                            source.sample_into(
                                system.universe_size(),
                                trial_index,
                                &mut rng,
                                &mut scratch,
                            );
                            out.push(
                                strategy.run(system.as_ref(), &scratch, &mut rng).probes as f64,
                            );
                        }
                    }
                    // Custom cells pay no scratch-coloring setup at all.
                    CellTask::Custom { sample } => {
                        for offset in 0..shard.trials {
                            let trial_index = shard.first_trial + offset as u64;
                            let mut rng =
                                derive_rng(plan.base_seed, shard.cell_index as u64, trial_index);
                            out.push(sample(trial_index, &mut rng));
                        }
                    }
                }
                out
            })
            .collect();

        let mut values = Vec::with_capacity(plan.cells.iter().map(|c| c.trials).sum());
        for shard in shard_values {
            values.extend(shard);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ColoringSource;
    use crate::eval::{StrategyRegistry, SystemRegistry};

    fn small_plan() -> EvalPlan {
        let systems = SystemRegistry::paper();
        let strategies = StrategyRegistry::paper();
        let maj = systems.build("Maj", 13).unwrap();
        let probe = strategies.build("Probe_Maj").unwrap();
        let mut plan = EvalPlan::new(77).trials(1_300);
        plan.probe(&maj, &probe, ColoringSource::iid(0.4));
        plan.probe(&maj, &probe, ColoringSource::iid(0.6));
        plan
    }

    #[test]
    fn shards_tile_each_cell_exactly() {
        let plan = small_plan();
        let engine = EvalEngine::new().with_shard_trials(512);
        let shards = engine.shards(&plan);
        for cell_index in 0..plan.cells.len() {
            let cell_shards: Vec<&Shard> = shards
                .iter()
                .filter(|s| s.cell_index == cell_index)
                .collect();
            let total: usize = cell_shards.iter().map(|s| s.trials).sum();
            assert_eq!(total, plan.cells[cell_index].trials);
            // Contiguous, ordered, non-overlapping.
            let mut next = 0u64;
            for shard in cell_shards {
                assert_eq!(shard.first_trial, next);
                assert!(shard.trials > 0 && shard.trials <= engine.shard_trials());
                next += shard.trials as u64;
            }
        }
    }

    #[test]
    fn reports_are_bit_identical_across_shard_sizes_and_threads() {
        let plan = small_plan();
        let baseline = EvalEngine::with_threads(1).run(&plan);
        for shard_trials in [1usize, 7, 64, 512, 10_000] {
            for threads in [1usize, 4] {
                let report = EvalEngine::with_threads(threads)
                    .with_shard_trials(shard_trials)
                    .run(&plan);
                assert_eq!(
                    report.fingerprint(),
                    baseline.fingerprint(),
                    "shard_trials={shard_trials} threads={threads} diverged"
                );
            }
        }
    }

    #[test]
    fn zero_shard_trials_restores_default() {
        let engine = EvalEngine::new().with_shard_trials(0);
        assert_eq!(engine.shard_trials(), DEFAULT_SHARD_TRIALS);
    }
}

//! Registries of the paper's system families and probe strategies.
//!
//! The registries make the evaluation engine *table-driven*: every named
//! construction of `quorum-systems` and every probing algorithm of
//! `quorum-probe` is enumerable, buildable from a size hint, and pairable —
//! [`StrategyRegistry::compatible_pairs`] yields exactly the `(system,
//! strategy)` cells a survey should run.

use quorum_probe::strategies::{
    IrProbeHqs, ProbeCw, ProbeHqs, ProbeMaj, ProbeTree, RProbeCw, RProbeHqs, RProbeMaj, RProbeTree,
    RandomScan, SequentialScan,
};
use quorum_systems::{CrumblingWalls, Grid, Hqs, Majority, TreeQuorum, Wheel};

use super::dynsys::{
    erase_system, typed_strategy, universal_strategy, DynProbeStrategy, DynSystem,
};

/// A named system family, buildable from an approximate universe size.
#[derive(Clone)]
pub struct SystemEntry {
    /// Family name, e.g. `"Maj"`.
    pub family: &'static str,
    /// Builds an instance with roughly `size_hint` elements (rounded to
    /// whatever the family supports).
    pub build: fn(usize) -> DynSystem,
}

impl std::fmt::Debug for SystemEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemEntry")
            .field("family", &self.family)
            .finish()
    }
}

/// The registry of system families.
#[derive(Debug, Clone)]
pub struct SystemRegistry {
    entries: Vec<SystemEntry>,
}

impl SystemRegistry {
    /// The families studied by the paper (Maj, Wheel, Triang, Tree, HQS)
    /// plus the Grid baseline.
    pub fn paper() -> Self {
        SystemRegistry {
            entries: vec![
                SystemEntry {
                    family: "Maj",
                    build: |hint| erase_system(Majority::with_size_hint(hint)),
                },
                SystemEntry {
                    family: "Wheel",
                    build: |hint| erase_system(Wheel::with_size_hint(hint)),
                },
                SystemEntry {
                    family: "Triang",
                    build: |hint| erase_system(CrumblingWalls::triang_with_size_hint(hint)),
                },
                SystemEntry {
                    family: "Tree",
                    build: |hint| erase_system(TreeQuorum::with_size_hint(hint)),
                },
                SystemEntry {
                    family: "HQS",
                    build: |hint| erase_system(Hqs::with_size_hint(hint)),
                },
                SystemEntry {
                    family: "Grid",
                    build: |hint| erase_system(Grid::with_size_hint(hint)),
                },
            ],
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[SystemEntry] {
        &self.entries
    }

    /// Looks an entry up by family name.
    pub fn get(&self, family: &str) -> Option<&SystemEntry> {
        self.entries.iter().find(|e| e.family == family)
    }

    /// Builds an instance of `family` with roughly `size_hint` elements.
    pub fn build(&self, family: &str, size_hint: usize) -> Option<DynSystem> {
        self.get(family).map(|e| (e.build)(size_hint))
    }
}

/// A named probe strategy, buildable as a [`DynProbeStrategy`].
#[derive(Clone)]
pub struct StrategyEntry {
    /// Canonical name, e.g. `"Probe_CW"`.
    pub name: &'static str,
    /// Builds the strategy.
    pub build: fn() -> DynProbeStrategy,
    /// Whether the strategy randomises its probe order (Section 4
    /// algorithms and `RandomScan`).
    pub randomized: bool,
}

impl std::fmt::Debug for StrategyEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyEntry")
            .field("name", &self.name)
            .field("randomized", &self.randomized)
            .finish()
    }
}

/// The registry of probe strategies.
#[derive(Debug, Clone)]
pub struct StrategyRegistry {
    entries: Vec<StrategyEntry>,
}

impl StrategyRegistry {
    /// Every strategy of the paper (Sections 3 and 4) plus the generic
    /// scan baselines.
    pub fn paper() -> Self {
        StrategyRegistry {
            entries: vec![
                StrategyEntry {
                    name: "Probe_Maj",
                    build: || typed_strategy::<Majority, _>(ProbeMaj::new()),
                    randomized: false,
                },
                StrategyEntry {
                    name: "R_Probe_Maj",
                    build: || typed_strategy::<Majority, _>(RProbeMaj::new()),
                    randomized: true,
                },
                StrategyEntry {
                    name: "Probe_CW",
                    build: || typed_strategy::<CrumblingWalls, _>(ProbeCw::new()),
                    randomized: false,
                },
                StrategyEntry {
                    name: "R_Probe_CW",
                    build: || typed_strategy::<CrumblingWalls, _>(RProbeCw::new()),
                    randomized: true,
                },
                StrategyEntry {
                    name: "Probe_Tree",
                    build: || typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
                    randomized: false,
                },
                StrategyEntry {
                    name: "R_Probe_Tree",
                    build: || typed_strategy::<TreeQuorum, _>(RProbeTree::new()),
                    randomized: true,
                },
                StrategyEntry {
                    name: "Probe_HQS",
                    build: || typed_strategy::<Hqs, _>(ProbeHqs::new()),
                    randomized: false,
                },
                StrategyEntry {
                    name: "R_Probe_HQS",
                    build: || typed_strategy::<Hqs, _>(RProbeHqs::new()),
                    randomized: true,
                },
                StrategyEntry {
                    name: "IR_Probe_HQS",
                    build: || typed_strategy::<Hqs, _>(IrProbeHqs::new()),
                    randomized: true,
                },
                StrategyEntry {
                    name: "SequentialScan",
                    build: || universal_strategy(SequentialScan::new()),
                    randomized: false,
                },
                StrategyEntry {
                    name: "RandomScan",
                    build: || universal_strategy(RandomScan::new()),
                    randomized: true,
                },
            ],
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[StrategyEntry] {
        &self.entries
    }

    /// Looks an entry up by canonical name.
    pub fn get(&self, name: &str) -> Option<&StrategyEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds the strategy registered under `name`.
    pub fn build(&self, name: &str) -> Option<DynProbeStrategy> {
        self.get(name).map(|e| (e.build)())
    }

    /// Every `(system, strategy)` pair that can run together, with systems
    /// built at roughly `size_hint` elements.
    pub fn compatible_pairs(
        &self,
        systems: &SystemRegistry,
        size_hint: usize,
    ) -> Vec<(DynSystem, DynProbeStrategy)> {
        let mut pairs = Vec::new();
        for system_entry in systems.entries() {
            let system = (system_entry.build)(size_hint);
            for strategy_entry in self.entries() {
                let strategy = (strategy_entry.build)();
                if strategy.supports(system.as_ref()) {
                    pairs.push((system.clone(), strategy));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and `quorum_systems::catalogue()` are two views of the
    /// same family inventory; layering prevents sharing code (the catalogue's
    /// type-erased builders cannot produce downcastable [`DynSystem`]s), so
    /// this test pins them together instead.
    #[test]
    fn registry_agrees_with_the_systems_catalogue() {
        let registry = SystemRegistry::paper();
        let catalogue = quorum_systems::catalogue();
        let registry_families: Vec<&str> = registry.entries().iter().map(|e| e.family).collect();
        let catalogue_families: Vec<&str> = catalogue.iter().map(|e| e.family).collect();
        assert_eq!(
            registry_families, catalogue_families,
            "family inventories diverged"
        );
        for (reg, cat) in registry.entries().iter().zip(&catalogue) {
            for hint in [3, 10, 30, 100] {
                assert_eq!(
                    (reg.build)(hint).universe_size(),
                    (cat.build)(hint).universe_size(),
                    "{} builds different sizes for hint {hint}",
                    reg.family
                );
            }
        }
    }

    #[test]
    fn system_registry_builds_every_family() {
        let registry = SystemRegistry::paper();
        assert_eq!(registry.entries().len(), 6);
        for entry in registry.entries() {
            let system = (entry.build)(20);
            assert!(system.universe_size() >= 3, "{} too small", entry.family);
        }
        assert!(registry.build("Maj", 10).is_some());
        assert!(registry.build("NoSuchFamily", 10).is_none());
    }

    #[test]
    fn strategy_registry_names_match_the_strategies() {
        let registry = StrategyRegistry::paper();
        assert_eq!(registry.entries().len(), 11);
        for entry in registry.entries() {
            let strategy = (entry.build)();
            assert_eq!(strategy.name(), entry.name, "registry name drifted");
        }
    }

    #[test]
    fn compatible_pairs_cover_typed_and_generic_strategies() {
        let systems = SystemRegistry::paper();
        let strategies = StrategyRegistry::paper();
        let pairs = strategies.compatible_pairs(&systems, 15);
        for (system, strategy) in &pairs {
            assert!(strategy.supports(system.as_ref()));
        }
        // 6 families × 2 generic scans, plus the typed pairs: Maj 2,
        // Triang (CrumblingWalls) 2, Tree 2, HQS 3.
        assert_eq!(
            pairs.len(),
            6 * 2 + 2 + 2 + 2 + 3,
            "pair count drifted: {}",
            pairs.len()
        );
        let maj_strategies: Vec<String> = pairs
            .iter()
            .filter(|(s, _)| s.name().starts_with("Maj"))
            .map(|(_, t)| t.name())
            .collect();
        assert!(maj_strategies.contains(&"Probe_Maj".to_string()));
        assert!(maj_strategies.contains(&"R_Probe_Maj".to_string()));
        assert!(maj_strategies.contains(&"SequentialScan".to_string()));
        assert!(maj_strategies.contains(&"RandomScan".to_string()));
    }
}

//! Registries of the paper's system families, probe strategies and failure
//! scenarios.
//!
//! The registries make the evaluation engine *table-driven*: every named
//! construction of `quorum-systems`, every probing algorithm of
//! `quorum-probe` and every failure regime of [`crate::FailureModel`] is
//! enumerable, buildable from a size hint, and pairable —
//! [`StrategyRegistry::compatible_pairs`] yields exactly the `(system,
//! strategy)` cells a survey should run, and [`ScenarioRegistry::standard`]
//! names the failure scenarios a scenario matrix sweeps them under.

use quorum_probe::strategies::{
    IrProbeHqs, LeastLoadedScan, PowerOfTwoScan, ProbeCw, ProbeHqs, ProbeMaj, ProbeTree, RProbeCw,
    RProbeHqs, RProbeMaj, RProbeTree, RandomScan, SequentialScan,
};
use std::sync::Arc;

use quorum_core::Organizations;
use quorum_systems::{CrumblingWalls, Hqs, Majority, SystemSpec, TreeQuorum};

use super::dynsys::{erase_spec, typed_strategy, universal_strategy, DynProbeStrategy, DynSystem};
use super::plan::ColoringSource;

/// Builds a registry family through [`SystemSpec::family_with_size_hint`]
/// and erases the concrete result, so every registry system comes from the
/// same construction path as user-written specs while typed strategies keep
/// downcasting.
fn build_family(family: &str, size_hint: usize) -> DynSystem {
    let spec = SystemSpec::family_with_size_hint(family, size_hint)
        .unwrap_or_else(|| panic!("{family} is not a spec family"));
    erase_spec(&spec).unwrap_or_else(|e| panic!("{family} spec invalid for hint {size_hint}: {e}"))
}

/// A named system family, buildable from an approximate universe size.
#[derive(Clone)]
pub struct SystemEntry {
    /// Family name, e.g. `"Maj"`.
    pub family: &'static str,
    /// Builds an instance with roughly `size_hint` elements (rounded to
    /// whatever the family supports).
    pub build: fn(usize) -> DynSystem,
}

impl std::fmt::Debug for SystemEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemEntry")
            .field("family", &self.family)
            .finish()
    }
}

/// The registry of system families.
#[derive(Debug, Clone)]
pub struct SystemRegistry {
    entries: Vec<SystemEntry>,
}

impl SystemRegistry {
    /// The families studied by the paper (Maj, Wheel, Triang, Tree, HQS)
    /// plus the Grid baseline and the recursive Compose family (an
    /// organization-aligned majority-of-majorities).
    ///
    /// Every entry is built through [`SystemSpec::family_with_size_hint`] +
    /// [`erase_spec`], so the registry exercises the same construction API
    /// as user-written specs; the concrete constructors remain available as
    /// thin wrappers for direct use.
    pub fn paper() -> Self {
        SystemRegistry {
            entries: vec![
                SystemEntry {
                    family: "Maj",
                    build: |hint| build_family("Maj", hint),
                },
                SystemEntry {
                    family: "Wheel",
                    build: |hint| build_family("Wheel", hint),
                },
                SystemEntry {
                    family: "Triang",
                    build: |hint| build_family("Triang", hint),
                },
                SystemEntry {
                    family: "Tree",
                    build: |hint| build_family("Tree", hint),
                },
                SystemEntry {
                    family: "HQS",
                    build: |hint| build_family("HQS", hint),
                },
                SystemEntry {
                    family: "Grid",
                    build: |hint| build_family("Grid", hint),
                },
                SystemEntry {
                    family: "Compose",
                    build: |hint| build_family("Compose", hint),
                },
            ],
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[SystemEntry] {
        &self.entries
    }

    /// Looks an entry up by family name.
    pub fn get(&self, family: &str) -> Option<&SystemEntry> {
        self.entries.iter().find(|e| e.family == family)
    }

    /// Builds an instance of `family` with roughly `size_hint` elements.
    pub fn build(&self, family: &str, size_hint: usize) -> Option<DynSystem> {
        self.get(family).map(|e| (e.build)(size_hint))
    }
}

/// A named probe strategy, buildable as a [`DynProbeStrategy`].
#[derive(Clone)]
pub struct StrategyEntry {
    /// Canonical name, e.g. `"Probe_CW"`.
    pub name: &'static str,
    /// Builds the strategy.
    pub build: fn() -> DynProbeStrategy,
    /// Whether the strategy randomises its probe order (Section 4
    /// algorithms and `RandomScan`).
    pub randomized: bool,
}

impl std::fmt::Debug for StrategyEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyEntry")
            .field("name", &self.name)
            .field("randomized", &self.randomized)
            .finish()
    }
}

/// The single way to assemble a [`StrategyRegistry`] — the registry's
/// extension point.
///
/// Historically strategies entered a registry through three diverging paths:
/// the hard-coded [`StrategyRegistry::paper`] table, the
/// [`StrategyRegistry::extended`] push-on-top variant, and ad-hoc typed
/// construction via [`typed_strategy`] / [`universal_strategy`] generics at
/// each call site. The builder collapses them: batteries are composable
/// starting points ([`RegistryBuilder::paper`],
/// [`RegistryBuilder::load_aware`]) and one [`RegistryBuilder::strategy`]
/// call registers anything else.
///
/// # Extending the registry
///
/// A strategy tied to one system family is erased with [`typed_strategy`];
/// a strategy that probes any [`DynSystem`] uses [`universal_strategy`].
/// Registering a name that is already present **replaces** the earlier
/// entry, so a custom battery can override a stock strategy in place:
///
/// ```
/// use quorum_probe::strategies::SequentialScan;
/// use quorum_sim::eval::{universal_strategy, RegistryBuilder};
///
/// let registry = RegistryBuilder::new()
///     .paper()
///     .strategy("MyScan", false, || universal_strategy(SequentialScan::new()))
///     .build();
/// assert!(registry.get("MyScan").is_some());
/// assert!(registry.get("Probe_CW").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegistryBuilder {
    entries: Vec<StrategyEntry>,
}

impl RegistryBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        RegistryBuilder::default()
    }

    /// Adds every strategy of the paper (Sections 3 and 4) plus the generic
    /// scan baselines — eleven entries.
    pub fn paper(self) -> Self {
        self.strategy("Probe_Maj", false, || {
            typed_strategy::<Majority, _>(ProbeMaj::new())
        })
        .strategy("R_Probe_Maj", true, || {
            typed_strategy::<Majority, _>(RProbeMaj::new())
        })
        .strategy("Probe_CW", false, || {
            typed_strategy::<CrumblingWalls, _>(ProbeCw::new())
        })
        .strategy("R_Probe_CW", true, || {
            typed_strategy::<CrumblingWalls, _>(RProbeCw::new())
        })
        .strategy("Probe_Tree", false, || {
            typed_strategy::<TreeQuorum, _>(ProbeTree::new())
        })
        .strategy("R_Probe_Tree", true, || {
            typed_strategy::<TreeQuorum, _>(RProbeTree::new())
        })
        .strategy("Probe_HQS", false, || {
            typed_strategy::<Hqs, _>(ProbeHqs::new())
        })
        .strategy("R_Probe_HQS", true, || {
            typed_strategy::<Hqs, _>(RProbeHqs::new())
        })
        .strategy("IR_Probe_HQS", true, || {
            typed_strategy::<Hqs, _>(IrProbeHqs::new())
        })
        .strategy("SequentialScan", false, || {
            universal_strategy(SequentialScan::new())
        })
        .strategy("RandomScan", true, || universal_strategy(RandomScan::new()))
    }

    /// Adds the generic **load-aware** strategies ([`LeastLoadedScan`],
    /// [`PowerOfTwoScan`]). Builder-built instances carry a fresh, empty
    /// load view — useful for probe-count comparisons; workload simulations
    /// instead build them over a live ledger (see [`crate::workload`]).
    pub fn load_aware(self) -> Self {
        self.strategy("LeastLoaded", false, || {
            universal_strategy(LeastLoadedScan::unloaded())
        })
        .strategy("PowerOfTwo", true, || {
            universal_strategy(PowerOfTwoScan::unloaded())
        })
    }

    /// Registers one strategy under its canonical `name`, replacing any
    /// existing entry of the same name. `randomized` marks strategies that
    /// randomise their probe order (the paper's Section 4 algorithms).
    pub fn strategy(
        self,
        name: &'static str,
        randomized: bool,
        build: fn() -> DynProbeStrategy,
    ) -> Self {
        self.register(StrategyEntry {
            name,
            build,
            randomized,
        })
    }

    /// Registers a pre-assembled [`StrategyEntry`], replacing any existing
    /// entry of the same name (the replacement keeps the original position,
    /// so battery order stays stable under overrides).
    pub fn register(mut self, entry: StrategyEntry) -> Self {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.name == entry.name) {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
        self
    }

    /// Finalises the registry.
    pub fn build(self) -> StrategyRegistry {
        StrategyRegistry {
            entries: self.entries,
        }
    }
}

/// The registry of probe strategies.
#[derive(Debug, Clone)]
pub struct StrategyRegistry {
    entries: Vec<StrategyEntry>,
}

impl StrategyRegistry {
    /// Every strategy of the paper (Sections 3 and 4) plus the generic
    /// scan baselines — [`RegistryBuilder::paper`] finalised as is.
    pub fn paper() -> Self {
        RegistryBuilder::new().paper().build()
    }

    /// The paper battery plus the load-aware strategies —
    /// [`RegistryBuilder::paper`] + [`RegistryBuilder::load_aware`]
    /// finalised as is.
    pub fn extended() -> Self {
        RegistryBuilder::new().paper().load_aware().build()
    }

    /// All entries.
    pub fn entries(&self) -> &[StrategyEntry] {
        &self.entries
    }

    /// Looks an entry up by canonical name.
    pub fn get(&self, name: &str) -> Option<&StrategyEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds the strategy registered under `name`.
    pub fn build(&self, name: &str) -> Option<DynProbeStrategy> {
        self.get(name).map(|e| (e.build)())
    }

    /// Every `(system, strategy)` pair that can run together, with systems
    /// built at roughly `size_hint` elements.
    pub fn compatible_pairs(
        &self,
        systems: &SystemRegistry,
        size_hint: usize,
    ) -> Vec<(DynSystem, DynProbeStrategy)> {
        let mut pairs = Vec::new();
        for system_entry in systems.entries() {
            let system = (system_entry.build)(size_hint);
            for strategy_entry in self.entries() {
                let strategy = (strategy_entry.build)();
                if strategy.supports(system.as_ref()) {
                    pairs.push((system.clone(), strategy));
                }
            }
        }
        pairs
    }
}

/// A named failure scenario, buildable for any universe size.
#[derive(Clone)]
pub struct ScenarioEntry {
    /// Canonical name, e.g. `"zoned-strong"`.
    pub name: &'static str,
    /// Builds the scenario's [`ColoringSource`] for a universe of `n`
    /// elements; `seed` feeds time-dependent scenarios (churn trajectories)
    /// so the whole matrix stays a pure function of the plan seed.
    pub build: fn(n: usize, seed: u64) -> ColoringSource,
}

impl std::fmt::Debug for ScenarioEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEntry")
            .field("name", &self.name)
            .finish()
    }
}

/// The registry of failure scenarios: the axis that turns a `(system,
/// strategy)` survey into a scenario matrix.
#[derive(Debug, Clone)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

/// Steps in every registry churn trajectory: long enough to average the
/// timeline, short enough that small CI runs replay it a few times.
const CHURN_STEPS: usize = 512;

impl ScenarioRegistry {
    /// The standard scenario battery: the paper's i.i.d. regime plus
    /// correlated zones (weak → wholesale), an organization-outage regime
    /// (whole operators fail together), heterogeneous per-element rates
    /// (gradient and hot spot), and fail/repair churn at two intensities.
    ///
    /// All zoned and organization scenarios share a per-element failure
    /// marginal of 0.3, so rows differ only in *how* failures are arranged —
    /// exactly the comparison the i.i.d. analysis cannot make.
    pub fn standard() -> Self {
        ScenarioRegistry {
            entries: vec![
                ScenarioEntry {
                    name: "iid-0.3",
                    build: |_, _| ColoringSource::iid(0.3),
                },
                ScenarioEntry {
                    name: "iid-0.5",
                    build: |_, _| ColoringSource::iid(0.5),
                },
                ScenarioEntry {
                    name: "zoned-weak",
                    build: |n, _| ColoringSource::zoned_correlated(zone_count_for(n), 0.3, 0.25),
                },
                ScenarioEntry {
                    name: "zoned-strong",
                    build: |n, _| ColoringSource::zoned_correlated(zone_count_for(n), 0.3, 0.75),
                },
                ScenarioEntry {
                    name: "zoned-wholesale",
                    build: |n, _| ColoringSource::zoned_correlated(zone_count_for(n), 0.3, 1.0),
                },
                ScenarioEntry {
                    name: "org-outage",
                    build: |n, _| {
                        let orgs = Organizations::contiguous(n, zone_count_for(n))
                            .expect("zone_count_for stays within 1..=n");
                        ColoringSource::org_zoned_correlated(Arc::new(orgs), 0.3, 0.75)
                    },
                },
                ScenarioEntry {
                    name: "hetero-gradient",
                    build: |n, _| {
                        // Linear ramp 0.1 → 0.5 across the universe; mean 0.3.
                        let probs = (0..n)
                            .map(|e| 0.1 + 0.4 * e as f64 / (n.max(2) - 1) as f64)
                            .collect();
                        ColoringSource::heterogeneous(probs)
                    },
                },
                ScenarioEntry {
                    name: "hetero-hotspot",
                    build: |n, _| {
                        // One failure-prone element in ten; the rest are
                        // reliable. Mean rate ≈ 0.9/10 + 0.2·9/10 = 0.27.
                        let probs = (0..n)
                            .map(|e| if e % 10 == 0 { 0.9 } else { 0.2 })
                            .collect();
                        ColoringSource::heterogeneous(probs)
                    },
                },
                ScenarioEntry {
                    name: "churn-slow",
                    build: |n, seed| ColoringSource::churn(n, 0.05, 0.15, CHURN_STEPS, seed),
                },
                ScenarioEntry {
                    name: "churn-fast",
                    build: |n, seed| ColoringSource::churn(n, 0.3, 0.5, CHURN_STEPS, seed),
                },
            ],
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds the scenario registered under `name` for a universe of `n`.
    pub fn build(&self, name: &str, n: usize, seed: u64) -> Option<ColoringSource> {
        self.get(name).map(|e| (e.build)(n, seed))
    }
}

/// Zone count used by the registry's zoned scenarios: about one zone per ten
/// elements, at least two so correlation is visible, never more than `n`.
fn zone_count_for(n: usize) -> usize {
    (n / 10).max(2).min(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    use super::super::engine::TrialRng;

    /// The registry and `quorum_systems::catalogue()` are two views of the
    /// same family inventory; layering prevents sharing code (the catalogue's
    /// type-erased builders cannot produce downcastable [`DynSystem`]s), so
    /// this test pins them together instead.
    #[test]
    fn registry_agrees_with_the_systems_catalogue() {
        let registry = SystemRegistry::paper();
        let catalogue = quorum_systems::catalogue();
        let registry_families: Vec<&str> = registry.entries().iter().map(|e| e.family).collect();
        let catalogue_families: Vec<&str> = catalogue.iter().map(|e| e.family).collect();
        assert_eq!(
            registry_families, catalogue_families,
            "family inventories diverged"
        );
        for (reg, cat) in registry.entries().iter().zip(&catalogue) {
            for hint in [3, 10, 30, 100] {
                assert_eq!(
                    (reg.build)(hint).universe_size(),
                    (cat.build)(hint).universe_size(),
                    "{} builds different sizes for hint {hint}",
                    reg.family
                );
            }
        }
    }

    #[test]
    fn system_registry_builds_every_family() {
        let registry = SystemRegistry::paper();
        assert_eq!(registry.entries().len(), 7);
        for entry in registry.entries() {
            let system = (entry.build)(20);
            assert!(system.universe_size() >= 3, "{} too small", entry.family);
        }
        assert!(registry.build("Maj", 10).is_some());
        assert!(registry.build("NoSuchFamily", 10).is_none());
    }

    /// The spec-built registry still hands typed strategies their concrete
    /// systems: migration to `SystemSpec` must not break downcasting.
    #[test]
    fn registry_systems_stay_downcastable() {
        let registry = SystemRegistry::paper();
        let maj = registry.build("Maj", 9).expect("registered");
        assert!(maj.as_ref().as_any().is::<Majority>());
        assert!(registry
            .build("Tree", 9)
            .expect("registered")
            .as_ref()
            .as_any()
            .is::<TreeQuorum>());
        assert!(registry
            .build("Compose", 25)
            .expect("registered")
            .as_ref()
            .as_any()
            .is::<quorum_systems::Composition>());
        let probe_maj = StrategyRegistry::paper().build("Probe_Maj").unwrap();
        assert!(probe_maj.supports(maj.as_ref()));
    }

    #[test]
    fn strategy_registry_names_match_the_strategies() {
        let registry = StrategyRegistry::paper();
        assert_eq!(registry.entries().len(), 11);
        for entry in registry.entries() {
            let strategy = (entry.build)();
            assert_eq!(strategy.name(), entry.name, "registry name drifted");
        }
    }

    #[test]
    fn extended_registry_adds_the_load_aware_strategies() {
        let registry = StrategyRegistry::extended();
        assert_eq!(registry.entries().len(), 13);
        for name in ["LeastLoaded", "PowerOfTwo"] {
            let strategy = registry.build(name).expect("registered");
            assert_eq!(strategy.name(), name);
            // Generic strategies: compatible with every family.
            for entry in SystemRegistry::paper().entries() {
                let system = (entry.build)(12);
                assert!(
                    strategy.supports(system.as_ref()),
                    "{name} vs {}",
                    entry.family
                );
            }
        }
        // The paper registry stays untouched.
        assert!(StrategyRegistry::paper().get("LeastLoaded").is_none());
    }

    #[test]
    fn builder_subsumes_the_stock_batteries() {
        let paper = RegistryBuilder::new().paper().build();
        let stock: Vec<&str> = StrategyRegistry::paper()
            .entries()
            .iter()
            .map(|e| e.name)
            .collect();
        let built: Vec<&str> = paper.entries().iter().map(|e| e.name).collect();
        assert_eq!(built, stock, "builder battery drifted from the registry");
        let extended = RegistryBuilder::new().paper().load_aware().build();
        assert_eq!(extended.entries().len(), 13);
    }

    #[test]
    fn builder_overrides_replace_in_place() {
        let registry = RegistryBuilder::new()
            .paper()
            .strategy("RandomScan", false, || {
                universal_strategy(SequentialScan::new())
            })
            .strategy(
                "Custom",
                false,
                || universal_strategy(SequentialScan::new()),
            )
            .build();
        assert_eq!(
            registry.entries().len(),
            12,
            "an override must not append a duplicate"
        );
        let overridden = registry.get("RandomScan").expect("still registered");
        assert!(!overridden.randomized, "the replacement entry wins");
        assert_eq!(
            registry.entries().last().expect("non-empty").name,
            "Custom",
            "fresh names append; overrides keep their position"
        );
    }

    #[test]
    fn scenario_registry_builds_every_scenario() {
        let scenarios = ScenarioRegistry::standard();
        assert_eq!(scenarios.entries().len(), 10);
        let mut rng = TrialRng::seed_from_u64(1);
        for entry in scenarios.entries() {
            for n in [9usize, 21, 64] {
                let source = (entry.build)(n, 42);
                let coloring = source.sample(n, 3, &mut rng);
                assert_eq!(
                    coloring.universe_size(),
                    n,
                    "{} built a wrong-sized coloring",
                    entry.name
                );
            }
        }
        assert!(scenarios.build("iid-0.5", 10, 1).is_some());
        assert!(scenarios.build("no-such-scenario", 10, 1).is_none());
        assert!(scenarios.get("churn-fast").is_some());
    }

    #[test]
    fn scenario_labels_are_distinct() {
        let scenarios = ScenarioRegistry::standard();
        let mut labels: Vec<String> = scenarios
            .entries()
            .iter()
            .map(|e| (e.build)(30, 7).label())
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(
            labels.len(),
            scenarios.entries().len(),
            "two scenarios render the same label"
        );
    }

    #[test]
    fn compatible_pairs_cover_typed_and_generic_strategies() {
        let systems = SystemRegistry::paper();
        let strategies = StrategyRegistry::paper();
        let pairs = strategies.compatible_pairs(&systems, 15);
        for (system, strategy) in &pairs {
            assert!(strategy.supports(system.as_ref()));
        }
        // 7 families × 2 generic scans, plus the typed pairs: Maj 2,
        // Triang (CrumblingWalls) 2, Tree 2, HQS 3. Compose only matches
        // the generic scans — no typed strategy knows its shape.
        assert_eq!(
            pairs.len(),
            7 * 2 + 2 + 2 + 2 + 3,
            "pair count drifted: {}",
            pairs.len()
        );
        let maj_strategies: Vec<String> = pairs
            .iter()
            .filter(|(s, _)| s.name().starts_with("Maj"))
            .map(|(_, t)| t.name())
            .collect();
        assert!(maj_strategies.contains(&"Probe_Maj".to_string()));
        assert!(maj_strategies.contains(&"R_Probe_Maj".to_string()));
        assert!(maj_strategies.contains(&"SequentialScan".to_string()));
        assert!(maj_strategies.contains(&"RandomScan".to_string()));
    }
}

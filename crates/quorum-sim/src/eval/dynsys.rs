//! The dyn-object layer: type-erased quorum systems and probe strategies.
//!
//! The paper's strategies are *typed*: `Probe_CW` only probes
//! [`CrumblingWalls`](quorum_systems::CrumblingWalls), `Probe_Tree` only
//! probes [`TreeQuorum`](quorum_systems::TreeQuorum), and so on — the Rust
//! traits mirror that as `ProbeStrategy<S>`. To run *every* system × strategy
//! combination from one table-driven engine, this module erases both sides:
//!
//! * [`DynSystem`] is a shared [`EvalSystem`] trait object that is still
//!   downcastable ([`EvalSystem::as_any`]), so typed strategies can recover
//!   their concrete system;
//! * [`DynStrategy`] is the object-safe strategy interface; [`ForSystem`]
//!   adapts a typed `ProbeStrategy<S>` (checking compatibility by downcast)
//!   and [`ForAny`] adapts a generic `ProbeStrategy<dyn QuorumSystem>` such
//!   as `SequentialScan` / `RandomScan`.

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

use quorum_core::{Coloring, QuorumSystem};
use quorum_probe::{run_strategy, ProbeRun, ProbeStrategy};
use quorum_systems::{BuiltSystem, SpecError, SystemSpec};
use rand::RngCore;

/// A quorum system that can be stored in heterogeneous collections *and*
/// recovered at its concrete type.
///
/// Implemented automatically for every `QuorumSystem + Send + Sync + 'static`.
pub trait EvalSystem: QuorumSystem + Send + Sync {
    /// The system as `Any`, for downcasting by typed strategy adapters.
    fn as_any(&self) -> &dyn Any;

    /// The system as a plain [`QuorumSystem`] trait object.
    fn as_quorum_system(&self) -> &(dyn QuorumSystem + Send + Sync + 'static);
}

impl<T: QuorumSystem + Send + Sync + 'static> EvalSystem for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_quorum_system(&self) -> &(dyn QuorumSystem + Send + Sync + 'static) {
        self
    }
}

/// A shared, type-erased, downcastable quorum system.
pub type DynSystem = Arc<dyn EvalSystem>;

/// Wraps a concrete system into a [`DynSystem`].
pub fn erase_system<S: QuorumSystem + Send + Sync + 'static>(system: S) -> DynSystem {
    Arc::new(system)
}

/// Builds `spec` and erases the result into a [`DynSystem`].
///
/// Unlike [`SystemSpec::build`] (which produces a plain
/// `DynQuorumSystem`), the erased system keeps its concrete type behind
/// [`EvalSystem::as_any`], so typed strategies (`Probe_Maj`, `Probe_Tree`,
/// …) can still downcast and run against spec-built systems.
pub fn erase_spec(spec: &SystemSpec) -> Result<DynSystem, SpecError> {
    Ok(match spec.build_concrete()? {
        BuiltSystem::Majority(s) => erase_system(s),
        BuiltSystem::Wheel(s) => erase_system(s),
        BuiltSystem::Walls(s) => erase_system(s),
        BuiltSystem::Tree(s) => erase_system(s),
        BuiltSystem::Hqs(s) => erase_system(s),
        BuiltSystem::Grid(s) => erase_system(s),
        BuiltSystem::Composition(s) => erase_system(s),
    })
}

/// An object-safe probe strategy: the engine-facing face of
/// [`ProbeStrategy`].
pub trait DynStrategy: Send + Sync {
    /// The strategy's report name, e.g. `"Probe_CW"`.
    fn name(&self) -> String;

    /// Whether this strategy can probe `system` (typed strategies only
    /// support their own system family).
    fn supports(&self, system: &dyn EvalSystem) -> bool;

    /// Runs the strategy once against `coloring`, returning the verified
    /// probe run.
    ///
    /// # Panics
    ///
    /// Panics if `supports(system)` is false, or propagates
    /// [`run_strategy`]'s panic on an invalid witness.
    fn run(&self, system: &dyn EvalSystem, coloring: &Coloring, rng: &mut dyn RngCore) -> ProbeRun;
}

/// A shared, type-erased probe strategy.
pub type DynProbeStrategy = Arc<dyn DynStrategy>;

/// Adapter: a typed `ProbeStrategy<S>` as a [`DynStrategy`], recovering `S`
/// by downcast.
pub struct ForSystem<S, T> {
    strategy: T,
    _system: PhantomData<fn() -> S>,
}

impl<S, T> ForSystem<S, T>
where
    S: QuorumSystem + 'static,
    T: ProbeStrategy<S> + Send + Sync,
{
    /// Wraps `strategy`.
    pub fn new(strategy: T) -> Self {
        ForSystem {
            strategy,
            _system: PhantomData,
        }
    }
}

impl<S, T> DynStrategy for ForSystem<S, T>
where
    S: QuorumSystem + 'static,
    T: ProbeStrategy<S> + Send + Sync,
{
    fn name(&self) -> String {
        self.strategy.name()
    }

    fn supports(&self, system: &dyn EvalSystem) -> bool {
        system.as_any().is::<S>()
    }

    fn run(&self, system: &dyn EvalSystem, coloring: &Coloring, rng: &mut dyn RngCore) -> ProbeRun {
        let concrete = system.as_any().downcast_ref::<S>().unwrap_or_else(|| {
            panic!(
                "strategy {} does not support system {} (wrong concrete type)",
                self.strategy.name(),
                system.name()
            )
        });
        run_strategy(concrete, &self.strategy, coloring, rng)
    }
}

/// Adapter: a system-generic strategy (e.g. `SequentialScan`, `RandomScan`)
/// as a [`DynStrategy`] compatible with every system.
pub struct ForAny<T> {
    strategy: T,
}

impl<T> ForAny<T>
where
    T: ProbeStrategy<dyn QuorumSystem + Send + Sync> + Send + Sync,
{
    /// Wraps `strategy`.
    pub fn new(strategy: T) -> Self {
        ForAny { strategy }
    }
}

impl<T> DynStrategy for ForAny<T>
where
    T: ProbeStrategy<dyn QuorumSystem + Send + Sync> + Send + Sync,
{
    fn name(&self) -> String {
        self.strategy.name()
    }

    fn supports(&self, _system: &dyn EvalSystem) -> bool {
        true
    }

    fn run(&self, system: &dyn EvalSystem, coloring: &Coloring, rng: &mut dyn RngCore) -> ProbeRun {
        run_strategy(system.as_quorum_system(), &self.strategy, coloring, rng)
    }
}

/// Wraps a typed `ProbeStrategy<S>` into a shared [`DynProbeStrategy`].
pub fn typed_strategy<S, T>(strategy: T) -> DynProbeStrategy
where
    S: QuorumSystem + 'static,
    T: ProbeStrategy<S> + Send + Sync + 'static,
{
    Arc::new(ForSystem::<S, T>::new(strategy))
}

/// Wraps a system-generic strategy into a shared [`DynProbeStrategy`].
pub fn universal_strategy<T>(strategy: T) -> DynProbeStrategy
where
    T: ProbeStrategy<dyn QuorumSystem + Send + Sync> + Send + Sync + 'static,
{
    Arc::new(ForAny::new(strategy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_probe::strategies::{ProbeCw, ProbeMaj, SequentialScan};
    use quorum_systems::{CrumblingWalls, Majority};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn typed_adapter_supports_only_its_system() {
        let maj: DynSystem = erase_system(Majority::new(5).unwrap());
        let wall: DynSystem = erase_system(CrumblingWalls::triang(3).unwrap());
        let probe_maj = typed_strategy::<Majority, _>(ProbeMaj::new());
        assert!(probe_maj.supports(maj.as_ref()));
        assert!(!probe_maj.supports(wall.as_ref()));
        let probe_cw = typed_strategy::<CrumblingWalls, _>(ProbeCw::new());
        assert!(probe_cw.supports(wall.as_ref()));
        assert!(!probe_cw.supports(maj.as_ref()));
    }

    #[test]
    fn universal_adapter_supports_everything() {
        let scan = universal_strategy(SequentialScan::new());
        for system in [
            erase_system(Majority::new(5).unwrap()),
            erase_system(CrumblingWalls::triang(3).unwrap()),
        ] {
            assert!(scan.supports(system.as_ref()));
            let coloring = Coloring::all_green(system.universe_size());
            let mut rng = StdRng::seed_from_u64(1);
            let run = scan.run(system.as_ref(), &coloring, &mut rng);
            assert!(run.witness.is_green());
        }
    }

    #[test]
    fn typed_adapter_runs_through_the_dyn_interface() {
        let maj: DynSystem = erase_system(Majority::new(5).unwrap());
        let strategy = typed_strategy::<Majority, _>(ProbeMaj::new());
        let coloring = Coloring::all_green(5);
        let mut rng = StdRng::seed_from_u64(2);
        let run = strategy.run(maj.as_ref(), &coloring, &mut rng);
        assert!(run.witness.is_green());
        assert_eq!(run.probes, 3);
        assert_eq!(strategy.name(), "Probe_Maj");
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn typed_adapter_rejects_wrong_system() {
        let wall: DynSystem = erase_system(CrumblingWalls::triang(3).unwrap());
        let probe_maj = typed_strategy::<Majority, _>(ProbeMaj::new());
        let coloring = Coloring::all_green(wall.universe_size());
        let mut rng = StdRng::seed_from_u64(3);
        let _ = probe_maj.run(wall.as_ref(), &coloring, &mut rng);
    }

    #[test]
    fn erase_spec_preserves_concrete_types() {
        let maj = erase_spec(&SystemSpec::parse("maj(5)").unwrap()).unwrap();
        assert!(maj.as_ref().as_any().is::<Majority>());
        let probe_maj = typed_strategy::<Majority, _>(ProbeMaj::new());
        assert!(probe_maj.supports(maj.as_ref()));
        let compose = erase_spec(&SystemSpec::parse("2(2(0,1,2),2(3,4,5),2(6,7,8))").unwrap())
            .expect("valid composition spec");
        assert!(compose
            .as_ref()
            .as_any()
            .is::<quorum_systems::Composition>());
        assert_eq!(compose.universe_size(), 9);
        let err = match erase_spec(&SystemSpec::Majority { n: 4 }) {
            Err(e) => e,
            Ok(_) => panic!("maj(4) must not build"),
        };
        assert!(err.to_string().contains("odd universe"), "{err}");
    }

    #[test]
    fn boxed_dyn_probe_strategy_adapts_too() {
        // The ISSUE's `Box<dyn ProbeStrategy<dyn QuorumSystem>>` shape.
        let boxed: Box<dyn ProbeStrategy<dyn QuorumSystem + Send + Sync> + Send + Sync> =
            Box::new(SequentialScan::new());
        let strategy = universal_strategy(boxed);
        let maj: DynSystem = erase_system(Majority::new(3).unwrap());
        let mut rng = StdRng::seed_from_u64(4);
        let run = strategy.run(maj.as_ref(), &Coloring::all_red(3), &mut rng);
        assert!(run.witness.is_red());
    }
}

//! The unified, parallel, registry-driven evaluation engine.
//!
//! Every Monte-Carlo number in the workspace — the Table 1 reproduction, the
//! exponent sweeps, the worst-case searches, even the urn-lemma simulations —
//! is produced by one engine: an [`EvalPlan`] of `(system, strategy,
//! coloring-source)` cells executed by [`EvalEngine::run`] into an
//! [`EvalReport`].
//!
//! The layer has three parts:
//!
//! 1. **Dyn objects** ([`dynsys`]): [`DynSystem`] / [`DynStrategy`] erase the
//!    typed `ProbeStrategy<S>` interface so heterogeneous cells fit one plan.
//! 2. **Registries** ([`registry`]): [`SystemRegistry`] and
//!    [`StrategyRegistry`] enumerate every named family and paper strategy
//!    and pair the compatible ones; [`ScenarioRegistry`] names the failure
//!    scenarios (i.i.d., correlated zones, heterogeneous rates, churn) that
//!    [`EvalPlan::matrix`] sweeps them under.
//! 3. **Engine** ([`engine`]): rayon-parallel execution of all trials with
//!    deterministic per-trial seed derivation
//!    (`base_seed, cell, trial → TrialRng`, a one-store SplitMix64 seed), so
//!    reports are **bit-identical** for any thread count.
//!
//! # Example
//!
//! ```
//! use quorum_sim::eval::{ColoringSource, EvalEngine, EvalPlan, SystemRegistry, StrategyRegistry};
//!
//! let systems = SystemRegistry::paper();
//! let strategies = StrategyRegistry::paper();
//! let maj = systems.build("Maj", 21).unwrap();
//! let probe_maj = strategies.build("Probe_Maj").unwrap();
//!
//! let mut plan = EvalPlan::new(2001).trials(2_000);
//! plan.probe(&maj, &probe_maj, ColoringSource::iid(0.5));
//!
//! let report = EvalEngine::new().run(&plan);
//! let cell = &report.cells[0];
//! // Proposition 3.2: Probe_Maj pays n − Θ(√n) expected probes at p = 1/2.
//! assert!(cell.estimate.mean > 10.0 && cell.estimate.mean < 21.0);
//!
//! // Same plan, one thread: bit-identical estimates.
//! let single = EvalEngine::with_threads(1).run(&plan);
//! assert_eq!(report.cells, single.cells);
//! ```

pub mod dynsys;
pub mod engine;
pub mod plan;
pub mod registry;

pub use dynsys::{
    erase_spec, erase_system, typed_strategy, universal_strategy, DynProbeStrategy, DynStrategy,
    DynSystem, EvalSystem, ForAny, ForSystem,
};
pub use engine::{
    derive_rng, fit_points, trial_values, CellReport, EvalEngine, EvalReport, Shard, TrialRng,
    DEFAULT_SHARD_TRIALS,
};
pub use plan::{ColoringSource, EvalCell, EvalPlan};
pub use registry::{
    RegistryBuilder, ScenarioEntry, ScenarioRegistry, StrategyEntry, StrategyRegistry, SystemEntry,
    SystemRegistry,
};

//! Plain-text and CSV report tables.

use std::fmt;

/// A simple column-aligned table used by the reproduction binaries to print
/// the paper's tables next to measured values.
///
/// # Examples
///
/// ```
/// use quorum_sim::Table;
///
/// let mut table = Table::new(vec!["system", "n", "measured", "paper"]);
/// table.add_row(vec!["Maj".into(), "21".into(), "17.9".into(), "n - Θ(√n)".into()]);
/// let text = table.render();
/// assert!(text.contains("Maj"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are supplied.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of headers.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order (for machine-readable exports).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (no quoting; cells are expected to be simple).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a float with three decimals for table cells.
pub fn fmt_f64(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut table = Table::new(["name", "value"]);
        table.add_row(vec!["a".into(), "1".into()]);
        table.add_row(vec!["long-name".into(), "2.5".into()]);
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // The "value" column starts at the same offset in every row.
        let offset = lines[0].find("value").unwrap();
        assert_eq!(lines[2].len().min(offset), offset.min(lines[2].len()));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut table = Table::new(["a", "b", "c"]);
        table.add_row(vec!["1".into(), "2".into(), "3".into()]);
        let csv = table.to_csv();
        assert_eq!(csv, "a,b,c\n1,2,3\n");
        assert_eq!(table.row_count(), 1);
        assert_eq!(table.headers().len(), 3);
    }

    #[test]
    fn display_matches_render() {
        let mut table = Table::new(["x"]);
        table.add_row(vec!["y".into()]);
        assert_eq!(table.to_string(), table.render());
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    #[should_panic(expected = "cells but the table has")]
    fn mismatched_row_panics() {
        let mut table = Table::new(["a", "b"]);
        table.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(2.5), "2.500");
        assert_eq!(fmt_f64(17.8934), "17.893");
    }
}

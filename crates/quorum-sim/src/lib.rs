//! # quorum-sim
//!
//! Monte-Carlo experiment harness for probe complexity: failure models that
//! generate colorings, estimators of the probabilistic probe complexity
//! (`PPC_p`) and of the randomized worst-case probe complexity (`PC_R`) of a
//! concrete strategy, parameter sweeps over universe sizes, and plain-text /
//! CSV report tables.
//!
//! At the centre sits the [`eval`] module: a parallel, registry-driven
//! evaluation engine. [`eval::EvalPlan`]s batch `(system, strategy,
//! coloring-source)` cells; [`eval::EvalEngine`] executes all their trials
//! on a rayon pool with deterministic per-trial seed derivation
//! (`base_seed, cell, trial → TrialRng`), so every report is bit-identical
//! regardless of thread count. The [`batch`] module adds word-parallel
//! estimators that evaluate 64 trials per word pass for monotone systems,
//! and the [`workload`] module runs heavy-traffic [`WorkloadCell`]s on the
//! cluster's discrete-event scheduler (concurrent sessions, service queues,
//! load-aware probing) with the same thread-count-invariant guarantee. The
//! classic entry points below ([`estimate_expected_probes`],
//! [`worst_case_over_colorings`], [`sweep`], …) are thin wrappers over the
//! same engine.
//!
//! Everything is driven by caller-supplied seeds so experiments are
//! reproducible.
//!
//! ```
//! use quorum_sim::{estimate_expected_probes, FailureModel};
//! use quorum_probe::strategies::ProbeCw;
//! use quorum_systems::CrumblingWalls;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let wall = CrumblingWalls::triang(6).unwrap();
//! let mut rng = StdRng::seed_from_u64(42);
//! let estimate = estimate_expected_probes(
//!     &wall,
//!     &ProbeCw::new(),
//!     &FailureModel::iid(0.5),
//!     2_000,
//!     &mut rng,
//! );
//! // Theorem 3.3: at most 2k − 1 = 11 expected probes.
//! assert!(estimate.mean < 11.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod eval;
pub mod experiment;
pub mod failure;
pub mod montecarlo;
pub mod report;
pub mod workload;
pub mod worstcase;

pub use batch::{
    batched_availability, batched_availability_wide, batched_failure_probability,
    batched_failure_probability_wide, DEFAULT_BATCH_WIDTH,
};
pub use eval::{
    ColoringSource, DynProbeStrategy, DynSystem, EvalEngine, EvalPlan, EvalReport, RegistryBuilder,
    ScenarioRegistry, Shard, StrategyRegistry, SystemRegistry, TrialRng,
};
pub use experiment::{sweep, SweepPoint, SweepRow};
pub use failure::{epsilon_resample_delta, ChurnTrajectory, ChurnWalker, FailureModel};
pub use montecarlo::{estimate_expected_probes, exhaustive_expected_probes, Estimate};
pub use report::Table;
pub use workload::{
    chaos_recovery_micros, chaos_scenarios, closed_loop_workload, net_outcomes_table,
    network_scenarios, open_poisson_workload, outcomes_table, run_live_cell,
    run_net_workload_cells, run_workload_cells, standard_workloads, LiveCellOutcome, NetScenario,
    NetWorkloadCell, NetWorkloadOutcome, WorkloadCell, WorkloadOutcome, WorkloadStrategy,
};
pub use worstcase::{estimate_worst_case, worst_case_over_colorings};

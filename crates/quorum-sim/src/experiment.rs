//! Parameter sweeps over universe sizes.

use quorum_core::QuorumSystem;
use quorum_probe::ProbeStrategy;
use rand::Rng;

use crate::{estimate_expected_probes, Estimate, FailureModel};

/// One point of a sweep: a system together with the strategy's estimate on it.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The universe size of the system at this point.
    pub universe_size: usize,
    /// The estimate obtained at this point.
    pub estimate: Estimate,
}

/// A full sweep result: the family/strategy labels plus one point per size.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Label of the system family (e.g. `"Tree"`).
    pub family: String,
    /// Label of the strategy (e.g. `"Probe_Tree"`).
    pub strategy: String,
    /// Label of the failure model (e.g. `"iid(p=0.5)"`).
    pub model: String,
    /// The measured points, in the order the systems were supplied.
    pub points: Vec<SweepPoint>,
}

impl SweepRow {
    /// The `(n, mean probes)` pairs of the sweep, ready for power-law fitting.
    pub fn as_fit_points(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.universe_size as f64, p.estimate.mean))
            .collect()
    }
}

/// Runs `strategy` on every system produced by `systems`, estimating the
/// expected probe count under `model` with `trials` runs per system.
///
/// The `family` label is carried through to the output row for reporting.
///
/// # Panics
///
/// Panics if `systems` is empty or `trials == 0`.
pub fn sweep<S, T, R>(
    family: &str,
    systems: &[S],
    strategy: &T,
    model: &FailureModel,
    trials: usize,
    rng: &mut R,
) -> SweepRow
where
    S: QuorumSystem + Sync,
    T: ProbeStrategy<S> + Sync,
    R: Rng,
{
    assert!(!systems.is_empty(), "a sweep needs at least one system");
    assert!(trials > 0, "a sweep needs at least one trial per system");
    let points = systems
        .iter()
        .map(|system| SweepPoint {
            universe_size: system.universe_size(),
            estimate: estimate_expected_probes(system, strategy, model, trials, rng),
        })
        .collect();
    SweepRow {
        family: family.to_string(),
        strategy: strategy.name(),
        model: model.label(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_analysis::fit_power_law;
    use quorum_probe::strategies::{ProbeHqs, ProbeTree};
    use quorum_systems::{Hqs, TreeQuorum};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sweep_produces_one_point_per_system() {
        let systems: Vec<TreeQuorum> = (1..=4).map(|h| TreeQuorum::new(h).unwrap()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let row = sweep(
            "Tree",
            &systems,
            &ProbeTree::new(),
            &FailureModel::iid(0.5),
            500,
            &mut rng,
        );
        assert_eq!(row.points.len(), 4);
        assert_eq!(row.family, "Tree");
        assert_eq!(row.strategy, "Probe_Tree");
        assert!(row.model.contains("0.5"));
        assert_eq!(row.points[0].universe_size, 3);
        assert_eq!(row.points[3].universe_size, 31);
        // Cost grows with the universe.
        assert!(row.points[3].estimate.mean > row.points[0].estimate.mean);
    }

    #[test]
    fn tree_sweep_exponent_is_sublinear() {
        // Corollary 3.7: PPC(Tree) = O(n^0.585); the fitted exponent over a
        // few sizes must be well below 1 and in the vicinity of 0.585.
        let systems: Vec<TreeQuorum> = (2..=7).map(|h| TreeQuorum::new(h).unwrap()).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let row = sweep(
            "Tree",
            &systems,
            &ProbeTree::new(),
            &FailureModel::iid(0.5),
            1_500,
            &mut rng,
        );
        let fit = fit_power_law(&row.as_fit_points());
        assert!(
            fit.exponent > 0.4 && fit.exponent < 0.75,
            "Tree exponent {} should be near 0.585",
            fit.exponent
        );
    }

    #[test]
    fn hqs_sweep_exponent_is_near_0_834() {
        let systems: Vec<Hqs> = (1..=5).map(|h| Hqs::new(h).unwrap()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let row = sweep(
            "HQS",
            &systems,
            &ProbeHqs::new(),
            &FailureModel::iid(0.5),
            1_500,
            &mut rng,
        );
        let fit = fit_power_law(&row.as_fit_points());
        assert!(
            fit.exponent > 0.75 && fit.exponent < 0.92,
            "HQS exponent {} should be near 0.834",
            fit.exponent
        );
    }

    #[test]
    #[should_panic(expected = "at least one system")]
    fn empty_sweep_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let systems: Vec<TreeQuorum> = vec![];
        let _ = sweep(
            "Tree",
            &systems,
            &ProbeTree::new(),
            &FailureModel::iid(0.5),
            10,
            &mut rng,
        );
    }
}

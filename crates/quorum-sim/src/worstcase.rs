//! Estimating the randomized worst-case probe complexity of a strategy.
//!
//! `PC_R(strategy, S) = max_c E[probes on coloring c]`, where the expectation
//! is over the strategy's randomness.  Two estimators are provided:
//!
//! * [`worst_case_over_colorings`] — evaluates the supplied colorings (e.g.
//!   all `2^n` of them for a small system, or a handful of adversarial ones
//!   for a large system) with many runs each and returns the maximum;
//! * [`estimate_worst_case`] — convenience wrapper that enumerates all
//!   colorings of a small system.

use quorum_analysis::RunningStats;
use quorum_core::{Coloring, QuorumSystem};
use quorum_probe::{run_strategy, ProbeStrategy};
use rand::Rng;

/// The expected probe count of a strategy on one specific coloring, plus which
/// coloring attained the maximum in a worst-case search.
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// The coloring with the largest estimated expected probe count.
    pub coloring: Coloring,
    /// The estimated expected probe count on that coloring.
    pub expected_probes: f64,
    /// Standard error of that estimate.
    pub std_error: f64,
}

/// Estimates `max_c E[probes]` over the given colorings, running the strategy
/// `runs_per_coloring` times on each.
///
/// # Panics
///
/// Panics if `colorings` is empty or `runs_per_coloring == 0`.
pub fn worst_case_over_colorings<S, T, R>(
    system: &S,
    strategy: &T,
    colorings: &[Coloring],
    runs_per_coloring: usize,
    rng: &mut R,
) -> WorstCase
where
    S: QuorumSystem + Sync + ?Sized,
    T: ProbeStrategy<S> + Sync + ?Sized,
    R: Rng,
{
    assert!(!colorings.is_empty(), "at least one coloring is required");
    assert!(
        runs_per_coloring > 0,
        "at least one run per coloring is required"
    );
    // All (coloring, run) trials flattened onto the shared parallel runner;
    // the caller's rng only contributes the base seed.
    let base_seed = rng.next_u64();
    let values = crate::eval::trial_values(
        colorings.len() * runs_per_coloring,
        base_seed,
        0,
        |trial, trial_rng| {
            let coloring = &colorings[trial as usize / runs_per_coloring];
            run_strategy(system, strategy, coloring, trial_rng).probes as f64
        },
    );
    let mut worst: Option<WorstCase> = None;
    for (coloring, costs) in colorings.iter().zip(values.chunks_exact(runs_per_coloring)) {
        let mut stats = RunningStats::new();
        for &cost in costs {
            stats.push(cost);
        }
        let summary = stats.summary();
        if worst
            .as_ref()
            .is_none_or(|w| summary.mean > w.expected_probes)
        {
            worst = Some(WorstCase {
                coloring: coloring.clone(),
                expected_probes: summary.mean,
                std_error: summary.std_error,
            });
        }
    }
    worst.expect("at least one coloring was evaluated")
}

/// Estimates the randomized worst-case probe complexity of a strategy on a
/// *small* system by enumerating all `2^n` colorings.
///
/// # Panics
///
/// Panics if the universe has more than 16 elements (enumerate the adversarial
/// colorings yourself and use [`worst_case_over_colorings`] for larger
/// systems) or if `runs_per_coloring == 0`.
pub fn estimate_worst_case<S, T, R>(
    system: &S,
    strategy: &T,
    runs_per_coloring: usize,
    rng: &mut R,
) -> WorstCase
where
    S: QuorumSystem + Sync + ?Sized,
    T: ProbeStrategy<S> + Sync + ?Sized,
    R: Rng,
{
    let n = system.universe_size();
    assert!(
        n <= 16,
        "exhaustive worst-case estimation is limited to n <= 16"
    );
    let colorings = Coloring::enumerate_all(n);
    worst_case_over_colorings(system, strategy, &colorings, runs_per_coloring, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_analysis::bounds;
    use quorum_probe::strategies::{RProbeCw, RProbeMaj, RProbeTree, SequentialScan};
    use quorum_systems::{CrumblingWalls, Majority, TreeQuorum};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_scan_worst_case_is_n_for_evasive_systems() {
        // Maj5 is evasive: the sequential scan has a coloring forcing all 5
        // probes (e.g. alternating colors).
        let maj = Majority::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let worst = estimate_worst_case(&maj, &SequentialScan::new(), 1, &mut rng);
        assert_eq!(worst.expected_probes, 5.0);
    }

    #[test]
    fn r_probe_maj_worst_case_matches_theorem_4_2() {
        // PC_R(Maj) = n − (n−1)/(n+3); for n = 5 that is 4.5.
        let maj = Majority::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let worst = estimate_worst_case(&maj, &RProbeMaj::new(), 400, &mut rng);
        let predicted = bounds::maj_randomized_exact(5);
        assert!(
            (worst.expected_probes - predicted).abs() < 0.15,
            "worst {} vs predicted {predicted}",
            worst.expected_probes
        );
        // The worst coloring has a bare majority of one color.
        let reds = worst.coloring.red_count();
        assert!(
            reds == 2 || reds == 3,
            "unexpected worst coloring {:?}",
            worst.coloring
        );
    }

    #[test]
    fn r_probe_cw_worst_case_below_theorem_4_4_bound() {
        let wall = CrumblingWalls::new(vec![1, 3, 4]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let worst = estimate_worst_case(&wall, &RProbeCw::new(), 200, &mut rng);
        let bound = bounds::cw_randomized_upper(wall.widths());
        assert!(
            worst.expected_probes <= bound + 0.3,
            "worst {} exceeds Theorem 4.4 bound {bound}",
            worst.expected_probes
        );
        // And at least the Yao lower bound (n+k)/2 = 5.5.
        assert!(worst.expected_probes + 0.3 >= bounds::cw_randomized_lower(8, 3));
    }

    #[test]
    fn r_probe_tree_worst_case_between_paper_bounds() {
        let tree = TreeQuorum::new(2).unwrap(); // n = 7
        let mut rng = StdRng::seed_from_u64(4);
        let worst = estimate_worst_case(&tree, &RProbeTree::new(), 300, &mut rng);
        let upper = bounds::tree_randomized_upper(7);
        let lower = bounds::tree_randomized_lower(7);
        assert!(
            worst.expected_probes <= upper + 0.4,
            "worst {} exceeds 5n/6 + 1/6 = {upper}",
            worst.expected_probes
        );
        assert!(
            worst.expected_probes + 0.4 >= lower,
            "worst {} below 2(n+1)/3 = {lower}",
            worst.expected_probes
        );
    }

    #[test]
    fn explicit_coloring_list_is_respected() {
        let maj = Majority::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let colorings = vec![Coloring::all_green(5), Coloring::all_red(5)];
        let worst =
            worst_case_over_colorings(&maj, &SequentialScan::new(), &colorings, 1, &mut rng);
        // Both colorings cost exactly 3 probes; the first maximiser is kept.
        assert_eq!(worst.expected_probes, 3.0);
        assert_eq!(worst.coloring, Coloring::all_green(5));
    }

    #[test]
    #[should_panic(expected = "at least one coloring")]
    fn empty_coloring_list_panics() {
        let maj = Majority::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = worst_case_over_colorings(&maj, &SequentialScan::new(), &[], 1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "n <= 16")]
    fn exhaustive_worst_case_rejects_large_universes() {
        let maj = Majority::new(17).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let _ = estimate_worst_case(&maj, &SequentialScan::new(), 1, &mut rng);
    }
}

//! Word-parallel Monte-Carlo estimators: 64 trials per word pass.
//!
//! The scalar availability estimator samples one coloring per trial, builds
//! its green [`quorum_core::ElementSet`] and evaluates the characteristic
//! function — thousands of operations per trial. The batched estimator here
//! flips the layout: each element contributes one **64-trial lane** (bit `t`
//! = alive in trial `t`), filled straight from the RNG by the exact
//! binary-expansion sampler of [`quorum_core::lanes::bernoulli_lanes`], and
//! the quorum availability check becomes AND/OR/popcount over lanes via
//! [`quorum_core::QuorumSystem::green_quorum_lanes`]. Systems without a lane
//! evaluator transparently fall back to a per-trial transpose + scalar check,
//! so the estimator is total over all constructions.
//!
//! Determinism: trial word `j` of a run derives its RNG as
//! `derive_rng(base_seed, BATCH_CELL, j)` and consumes it element-
//! sequentially, whether the word is evaluated alone or inside a wider
//! superblock. Results are therefore a pure function of
//! `(system, p, trials, base_seed)` and bit-identical for any worker-thread
//! count **and any lane width** — the same contract as the evaluation engine.

use quorum_analysis::RunningStats;
use quorum_core::lanes::{bernoulli_lane_words, LANE_TRIALS};
use quorum_core::{ElementSet, QuorumSystem, WORD_BITS};
use rand::RngCore;
use rayon::prelude::*;

use crate::eval::{derive_rng, TrialRng};
use crate::montecarlo::Estimate;

/// The reserved cell coordinate of batched availability runs in the
/// `derive_rng(base_seed, cell, trial)` space (distinct from plan cells,
/// which count up from zero).
const BATCH_CELL: u64 = u64::MAX - 1;

/// Default trial-word width of the batched estimators: 8-word superblocks,
/// i.e. 512 trials per traversal of the quorum circuit. Every width produces
/// bit-identical estimates; wider blocks amortise the circuit walk over more
/// trials at the cost of a larger working set.
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// Estimates the availability failure probability `F_p(S)` — the probability
/// that no live quorum exists under i.i.d. element failures with probability
/// `p` — evaluating **[`DEFAULT_BATCH_WIDTH`]·64 trials per circuit pass**.
///
/// Returns the estimate over exactly `trials` trials; the result is a pure
/// function of the arguments (thread-count and lane-width invariant).
///
/// # Panics
///
/// Panics if `p` is not a probability or `trials == 0`.
pub fn batched_failure_probability<S>(system: &S, p: f64, trials: usize, base_seed: u64) -> Estimate
where
    S: QuorumSystem + Sync + ?Sized,
{
    batched_failure_probability_wide(system, p, trials, base_seed, DEFAULT_BATCH_WIDTH)
}

/// [`batched_failure_probability`] at an explicit lane-block width.
///
/// The trial axis is tiled into superblocks of `width` consecutive 64-trial
/// words. Each trial word owns its own derived RNG stream and is consumed
/// element-sequentially regardless of the width it is grouped under, so
/// **every width returns the same bits** — `width` only tunes how many trials
/// each traversal of the quorum predicate amortises.
///
/// Widths outside [`quorum_core::lanes::LANE_WIDTHS`] (and partial tail
/// blocks) transparently fall back to word-at-a-time evaluation; systems
/// without any lane evaluator fall back further to a per-trial transpose +
/// scalar check, so the estimator is total over all constructions.
///
/// # Panics
///
/// Panics if `p` is not a probability, `trials == 0`, or `width == 0`.
pub fn batched_failure_probability_wide<S>(
    system: &S,
    p: f64,
    trials: usize,
    base_seed: u64,
    width: usize,
) -> Estimate
where
    S: QuorumSystem + Sync + ?Sized,
{
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    assert!(trials > 0, "at least one trial is required");
    assert!(width > 0, "lane width must be positive");
    let n = system.universe_size();
    let green_probability = 1.0 - p;
    let words = trials.div_ceil(LANE_TRIALS);
    let superblocks: Vec<usize> = (0..words).step_by(width).collect();

    // Each superblock is independent and pure: fill an element-major block of
    // lanes (one RNG stream per trial word), evaluate the quorum predicate
    // over all of its trials in one circuit walk, return the failure words.
    let block_words: Vec<(Vec<u64>, usize)> = superblocks
        .into_par_iter()
        .map(|first_word| {
            let w = width.min(words - first_word);
            let mut rngs: Vec<TrialRng> = (0..w)
                .map(|i| derive_rng(base_seed, BATCH_CELL, (first_word + i) as u64))
                .collect();
            let mut lanes = vec![0u64; n * w];
            for slot in lanes.chunks_mut(w) {
                bernoulli_lane_words(green_probability, slot, |i| rngs[i].next_u64());
            }
            let take = (LANE_TRIALS * w).min(trials - first_word * LANE_TRIALS);
            let mut available = vec![0u64; w];
            if !system.green_quorum_lane_block(&lanes, w, &mut available) {
                // No block evaluator at this width: gather each trial word
                // out of the element-major layout and take the word path.
                let mut word_lanes = vec![0u64; n];
                for (j, out) in available.iter_mut().enumerate() {
                    for (e, lane) in word_lanes.iter_mut().enumerate() {
                        *lane = lanes[e * w + j];
                    }
                    let word_take = LANE_TRIALS.min(trials - (first_word + j) * LANE_TRIALS);
                    *out = system
                        .green_quorum_lanes(&word_lanes)
                        .unwrap_or_else(|| transpose_and_check(system, &word_lanes, word_take));
                }
            }
            for word in &mut available {
                *word = !*word;
            }
            (available, take)
        })
        .collect();

    // Word-parallel fold: up to 64·width indicator trials per push, in trial
    // order, so the accumulator sees the same sequence at every width.
    let mut stats = RunningStats::new();
    for (failure_words, take) in block_words {
        stats.push_indicator_lanes(&failure_words, take);
    }
    Estimate::from_stats(&stats)
}

/// Estimates the availability `1 − F_p(S)` with the same batched machinery.
pub fn batched_availability<S>(system: &S, p: f64, trials: usize, base_seed: u64) -> Estimate
where
    S: QuorumSystem + Sync + ?Sized,
{
    batched_availability_wide(system, p, trials, base_seed, DEFAULT_BATCH_WIDTH)
}

/// [`batched_availability`] at an explicit lane-block width.
pub fn batched_availability_wide<S>(
    system: &S,
    p: f64,
    trials: usize,
    base_seed: u64,
    width: usize,
) -> Estimate
where
    S: QuorumSystem + Sync + ?Sized,
{
    let failure = batched_failure_probability_wide(system, p, trials, base_seed, width);
    Estimate {
        mean: 1.0 - failure.mean,
        std_error: failure.std_error,
        min: 1.0 - failure.max,
        max: 1.0 - failure.min,
        samples: failure.samples,
    }
}

/// Fallback for systems without a lane evaluator: transpose the block into
/// per-trial green sets (word accumulation, one scratch set) and evaluate the
/// scalar characteristic function per trial.
fn transpose_and_check<S>(system: &S, lanes: &[u64], take: usize) -> u64
where
    S: QuorumSystem + ?Sized,
{
    let n = lanes.len();
    let mut green = ElementSet::empty(n);
    let mut available = 0u64;
    for t in 0..take {
        // Chunk the *element* axis by the set's backing-word width (which is
        // independent of the trial-lane width, even though both are 64).
        for (word_index, chunk) in lanes.chunks(WORD_BITS).enumerate() {
            let mut word = 0u64;
            for (bit, &lane) in chunk.iter().enumerate() {
                word |= ((lane >> t) & 1) << bit;
            }
            green.set_word(word_index, word);
        }
        if system.contains_quorum(&green) {
            available |= 1u64 << t;
        }
    }
    available
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_analysis::availability::exact_failure_probability;
    use quorum_systems::{Grid, Hqs, Majority, TreeQuorum};

    /// A wrapper hiding the lane evaluator, to force the transpose fallback.
    struct NoLanes<S>(S);

    impl<S: QuorumSystem> QuorumSystem for NoLanes<S> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn universe_size(&self) -> usize {
            self.0.universe_size()
        }
        fn contains_quorum(&self, set: &ElementSet) -> bool {
            self.0.contains_quorum(set)
        }
        fn min_quorum_size(&self) -> usize {
            self.0.min_quorum_size()
        }
        fn max_quorum_size(&self) -> usize {
            self.0.max_quorum_size()
        }
    }

    #[test]
    fn batched_estimate_matches_exact_enumeration() {
        let maj = Majority::new(9).unwrap();
        for p in [0.2, 0.4, 0.5] {
            let exact = exact_failure_probability(&maj, p).unwrap();
            let estimate = batched_failure_probability(&maj, p, 60_000, 11);
            assert!(
                (estimate.mean - exact).abs() < 0.02,
                "p={p}: batched {} vs exact {exact}",
                estimate.mean
            );
            assert_eq!(estimate.samples, 60_000);
        }
    }

    #[test]
    fn lane_and_fallback_paths_agree_bitwise() {
        // Same seed ⇒ same lanes ⇒ identical estimates whether the quorum
        // check runs word-parallel or through the transpose fallback.
        for trials in [1usize, 63, 64, 65, 1000] {
            let tree = TreeQuorum::new(3).unwrap();
            let fast = batched_failure_probability(&tree, 0.3, trials, 5);
            let slow =
                batched_failure_probability(&NoLanes(TreeQuorum::new(3).unwrap()), 0.3, trials, 5);
            assert_eq!(fast, slow, "trials={trials}");
        }
    }

    #[test]
    fn every_lane_width_returns_the_same_bits() {
        // Widths with a block evaluator (1, 4, 8), widths forcing the gather
        // fallback (2, 3), and widths wider than the whole run (16) must all
        // reproduce the width-1 estimate exactly.
        let grid = Grid::new(4, 5).unwrap();
        for trials in [1usize, 63, 64, 65, 300, 1000] {
            let narrow = batched_failure_probability_wide(&grid, 0.35, trials, 9, 1);
            for width in [2usize, 3, 4, 8, 16] {
                let wide = batched_failure_probability_wide(&grid, 0.35, trials, 9, width);
                assert_eq!(narrow, wide, "trials={trials} width={width}");
            }
        }
    }

    #[test]
    fn default_width_matches_the_legacy_entry_point() {
        let maj = Majority::new(11).unwrap();
        assert_eq!(
            batched_failure_probability(&maj, 0.45, 2_500, 13),
            batched_failure_probability_wide(&maj, 0.45, 2_500, 13, DEFAULT_BATCH_WIDTH),
        );
    }

    #[test]
    fn wide_fallback_without_lane_evaluator_agrees_bitwise() {
        for width in [1usize, 4, 8] {
            let fast =
                batched_failure_probability_wide(&TreeQuorum::new(3).unwrap(), 0.3, 500, 5, width);
            let slow = batched_failure_probability_wide(
                &NoLanes(TreeQuorum::new(3).unwrap()),
                0.3,
                500,
                5,
                width,
            );
            assert_eq!(fast, slow, "width={width}");
        }
    }

    #[test]
    fn batched_availability_complements_failure() {
        let grid = Grid::new(5, 5).unwrap();
        let fail = batched_failure_probability(&grid, 0.3, 10_000, 3);
        let avail = batched_availability(&grid, 0.3, 10_000, 3);
        assert!((fail.mean + avail.mean - 1.0).abs() < 1e-12);
        assert_eq!(fail.samples, avail.samples);
    }

    #[test]
    fn batched_estimates_are_thread_count_invariant() {
        let hqs = Hqs::new(3).unwrap();
        let ambient = batched_failure_probability(&hqs, 0.4, 7_777, 21);
        let single = crate::eval::EvalEngine::with_threads(1)
            .install(|| batched_failure_probability(&hqs, 0.4, 7_777, 21));
        let wide = crate::eval::EvalEngine::with_threads(8)
            .install(|| batched_failure_probability(&hqs, 0.4, 7_777, 21));
        assert_eq!(ambient, single);
        assert_eq!(single, wide);
    }

    #[test]
    fn extremes_are_exact() {
        let maj = Majority::new(7).unwrap();
        assert_eq!(batched_failure_probability(&maj, 0.0, 1_000, 1).mean, 0.0);
        assert_eq!(batched_failure_probability(&maj, 1.0, 1_000, 1).mean, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let maj = Majority::new(3).unwrap();
        let _ = batched_failure_probability(&maj, 0.5, 0, 1);
    }
}

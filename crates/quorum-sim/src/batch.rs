//! Word-parallel Monte-Carlo estimators: 64 trials per word pass.
//!
//! The scalar availability estimator samples one coloring per trial, builds
//! its green [`quorum_core::ElementSet`] and evaluates the characteristic
//! function — thousands of operations per trial. The batched estimator here
//! flips the layout: each element contributes one **64-trial lane** (bit `t`
//! = alive in trial `t`), filled straight from the RNG by the exact
//! binary-expansion sampler of [`quorum_core::lanes::bernoulli_lanes`], and
//! the quorum availability check becomes AND/OR/popcount over lanes via
//! [`quorum_core::QuorumSystem::green_quorum_lanes`]. Systems without a lane
//! evaluator transparently fall back to a per-trial transpose + scalar check,
//! so the estimator is total over all constructions.
//!
//! Determinism: block `b` of a run derives its RNG as
//! `derive_rng(base_seed, BATCH_CELL, b)`, so results are a pure function of
//! `(system, p, trials, base_seed)` and bit-identical for any worker-thread
//! count — the same contract as the evaluation engine.

use quorum_analysis::RunningStats;
use quorum_core::lanes::{bernoulli_lanes, LANE_TRIALS};
use quorum_core::{ElementSet, QuorumSystem, WORD_BITS};
use rand::RngCore;
use rayon::prelude::*;

use crate::eval::derive_rng;
use crate::montecarlo::Estimate;

/// The reserved cell coordinate of batched availability runs in the
/// `derive_rng(base_seed, cell, trial)` space (distinct from plan cells,
/// which count up from zero).
const BATCH_CELL: u64 = u64::MAX - 1;

/// Estimates the availability failure probability `F_p(S)` — the probability
/// that no live quorum exists under i.i.d. element failures with probability
/// `p` — evaluating **64 trials per word pass**.
///
/// Returns the estimate over exactly `trials` trials; the result is a pure
/// function of the arguments (thread-count invariant).
///
/// # Panics
///
/// Panics if `p` is not a probability or `trials == 0`.
pub fn batched_failure_probability<S>(system: &S, p: f64, trials: usize, base_seed: u64) -> Estimate
where
    S: QuorumSystem + Sync + ?Sized,
{
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    assert!(trials > 0, "at least one trial is required");
    let n = system.universe_size();
    let green_probability = 1.0 - p;
    let blocks: Vec<usize> = (0..trials.div_ceil(LANE_TRIALS)).collect();

    // Each block is independent and pure: fill one lane per element, evaluate
    // the quorum predicate over all 64 trials, return the failure word.
    let block_words: Vec<(u64, usize)> = blocks
        .into_par_iter()
        .map(|block| {
            let mut rng = derive_rng(base_seed, BATCH_CELL, block as u64);
            let lanes: Vec<u64> = (0..n)
                .map(|_| bernoulli_lanes(green_probability, || rng.next_u64()))
                .collect();
            let take = LANE_TRIALS.min(trials - block * LANE_TRIALS);
            let available = system
                .green_quorum_lanes(&lanes)
                .unwrap_or_else(|| transpose_and_check(system, &lanes, take));
            (!available, take)
        })
        .collect();

    // Word-parallel fold: 64 indicator trials enter the accumulator per push.
    let mut stats = RunningStats::new();
    for (failure_word, take) in block_words {
        stats.push_indicator_word(failure_word, take);
    }
    Estimate::from_stats(&stats)
}

/// Estimates the availability `1 − F_p(S)` with the same batched machinery.
pub fn batched_availability<S>(system: &S, p: f64, trials: usize, base_seed: u64) -> Estimate
where
    S: QuorumSystem + Sync + ?Sized,
{
    let failure = batched_failure_probability(system, p, trials, base_seed);
    Estimate {
        mean: 1.0 - failure.mean,
        std_error: failure.std_error,
        min: 1.0 - failure.max,
        max: 1.0 - failure.min,
        samples: failure.samples,
    }
}

/// Fallback for systems without a lane evaluator: transpose the block into
/// per-trial green sets (word accumulation, one scratch set) and evaluate the
/// scalar characteristic function per trial.
fn transpose_and_check<S>(system: &S, lanes: &[u64], take: usize) -> u64
where
    S: QuorumSystem + ?Sized,
{
    let n = lanes.len();
    let mut green = ElementSet::empty(n);
    let mut available = 0u64;
    for t in 0..take {
        // Chunk the *element* axis by the set's backing-word width (which is
        // independent of the trial-lane width, even though both are 64).
        for (word_index, chunk) in lanes.chunks(WORD_BITS).enumerate() {
            let mut word = 0u64;
            for (bit, &lane) in chunk.iter().enumerate() {
                word |= ((lane >> t) & 1) << bit;
            }
            green.set_word(word_index, word);
        }
        if system.contains_quorum(&green) {
            available |= 1u64 << t;
        }
    }
    available
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_analysis::availability::exact_failure_probability;
    use quorum_systems::{Grid, Hqs, Majority, TreeQuorum};

    /// A wrapper hiding the lane evaluator, to force the transpose fallback.
    struct NoLanes<S>(S);

    impl<S: QuorumSystem> QuorumSystem for NoLanes<S> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn universe_size(&self) -> usize {
            self.0.universe_size()
        }
        fn contains_quorum(&self, set: &ElementSet) -> bool {
            self.0.contains_quorum(set)
        }
        fn min_quorum_size(&self) -> usize {
            self.0.min_quorum_size()
        }
        fn max_quorum_size(&self) -> usize {
            self.0.max_quorum_size()
        }
    }

    #[test]
    fn batched_estimate_matches_exact_enumeration() {
        let maj = Majority::new(9).unwrap();
        for p in [0.2, 0.4, 0.5] {
            let exact = exact_failure_probability(&maj, p).unwrap();
            let estimate = batched_failure_probability(&maj, p, 60_000, 11);
            assert!(
                (estimate.mean - exact).abs() < 0.02,
                "p={p}: batched {} vs exact {exact}",
                estimate.mean
            );
            assert_eq!(estimate.samples, 60_000);
        }
    }

    #[test]
    fn lane_and_fallback_paths_agree_bitwise() {
        // Same seed ⇒ same lanes ⇒ identical estimates whether the quorum
        // check runs word-parallel or through the transpose fallback.
        for trials in [1usize, 63, 64, 65, 1000] {
            let tree = TreeQuorum::new(3).unwrap();
            let fast = batched_failure_probability(&tree, 0.3, trials, 5);
            let slow =
                batched_failure_probability(&NoLanes(TreeQuorum::new(3).unwrap()), 0.3, trials, 5);
            assert_eq!(fast, slow, "trials={trials}");
        }
    }

    #[test]
    fn batched_availability_complements_failure() {
        let grid = Grid::new(5, 5).unwrap();
        let fail = batched_failure_probability(&grid, 0.3, 10_000, 3);
        let avail = batched_availability(&grid, 0.3, 10_000, 3);
        assert!((fail.mean + avail.mean - 1.0).abs() < 1e-12);
        assert_eq!(fail.samples, avail.samples);
    }

    #[test]
    fn batched_estimates_are_thread_count_invariant() {
        let hqs = Hqs::new(3).unwrap();
        let ambient = batched_failure_probability(&hqs, 0.4, 7_777, 21);
        let single = crate::eval::EvalEngine::with_threads(1)
            .install(|| batched_failure_probability(&hqs, 0.4, 7_777, 21));
        let wide = crate::eval::EvalEngine::with_threads(8)
            .install(|| batched_failure_probability(&hqs, 0.4, 7_777, 21));
        assert_eq!(ambient, single);
        assert_eq!(single, wide);
    }

    #[test]
    fn extremes_are_exact() {
        let maj = Majority::new(7).unwrap();
        assert_eq!(batched_failure_probability(&maj, 0.0, 1_000, 1).mean, 0.0);
        assert_eq!(batched_failure_probability(&maj, 1.0, 1_000, 1).mean, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let maj = Majority::new(3).unwrap();
        let _ = batched_failure_probability(&maj, 0.5, 0, 1);
    }
}

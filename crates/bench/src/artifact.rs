//! Machine-readable bench artifacts: the `BENCH_<sha>.json` files the CI
//! `bench-smoke` job uploads on every push, recording mean probe counts and
//! wall-clock time per reproduced table so the performance trajectory of the
//! repository is tracked over time.
//!
//! The JSON is written by hand (the workspace is offline; no serde): a flat
//! schema of experiment records, each carrying its wall-clock milliseconds
//! and the full table as `columns` + `rows` string matrices.

use std::time::Duration;

use probequorum::prelude::Table;

/// A collector of per-experiment results, serialisable to JSON.
#[derive(Debug, Default)]
pub struct BenchArtifact {
    records: Vec<ExperimentRecord>,
}

/// One reproduced experiment: its name, wall-clock time and output table.
#[derive(Debug)]
struct ExperimentRecord {
    name: String,
    wall: Duration,
    table: Table,
}

impl BenchArtifact {
    /// An empty artifact.
    pub fn new() -> Self {
        BenchArtifact::default()
    }

    /// Records one experiment's table and wall-clock time.
    pub fn record(&mut self, name: impl Into<String>, wall: Duration, table: Table) {
        self.records.push(ExperimentRecord {
            name: name.into(),
            wall,
            table,
        });
    }

    /// Number of recorded experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialises the artifact to JSON.
    ///
    /// `sha` identifies the commit (CI passes `GITHUB_SHA`); `seed`,
    /// `trials` and `threads` pin the reproduction configuration so two
    /// artifacts are comparable only when they match.
    pub fn to_json(&self, sha: &str, seed: u64, trials: usize, threads: usize) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"probequorum-bench/1\",\n");
        out.push_str(&format!("  \"sha\": {},\n", json_string(sha)));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"trials\": {trials},\n"));
        out.push_str(&format!("  \"threads\": {threads},\n"));
        out.push_str("  \"experiments\": [");
        for (index, record) in self.records.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&record.name)));
            out.push_str(&format!(
                "      \"wall_ms\": {:.3},\n",
                record.wall.as_secs_f64() * 1_000.0
            ));
            out.push_str(&format!(
                "      \"columns\": {},\n",
                json_string_array(record.table.headers())
            ));
            out.push_str("      \"rows\": [");
            for (row_index, row) in record.table.rows().iter().enumerate() {
                if row_index > 0 {
                    out.push(',');
                }
                out.push_str("\n        ");
                out.push_str(&json_string_array(row));
            }
            if !record.table.rows().is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a slice of strings as a JSON array literal.
fn json_string_array(values: &[String]) -> String {
    let cells: Vec<String> = values.iter().map(|v| json_string(v)).collect();
    format!("[{}]", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut table = Table::new(["system", "mean"]);
        table.add_row(vec!["Maj".into(), "4.125".into()]);
        table.add_row(vec!["say \"hi\"\\".into(), "1.000".into()]);
        table
    }

    #[test]
    fn artifact_serialises_all_records() {
        let mut artifact = BenchArtifact::new();
        assert!(artifact.is_empty());
        artifact.record("table1", Duration::from_millis(1500), sample_table());
        artifact.record("zoned", Duration::from_micros(250), sample_table());
        assert_eq!(artifact.len(), 2);

        let json = artifact.to_json("abc123", 2001, 200, 1);
        assert!(json.contains("\"schema\": \"probequorum-bench/1\""));
        assert!(json.contains("\"sha\": \"abc123\""));
        assert!(json.contains("\"name\": \"table1\""));
        assert!(json.contains("\"wall_ms\": 1500.000"));
        assert!(json.contains("\"wall_ms\": 0.250"));
        assert!(json.contains("[\"system\", \"mean\"]"));
        assert!(json.contains("[\"Maj\", \"4.125\"]"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        // The sample table's tricky row survives into valid JSON.
        let mut artifact = BenchArtifact::new();
        artifact.record("x", Duration::ZERO, sample_table());
        let json = artifact.to_json("", 1, 1, 1);
        assert!(json.contains("\"say \\\"hi\\\"\\\\\""));
    }

    #[test]
    fn empty_artifact_is_valid_json_shape() {
        let json = BenchArtifact::new().to_json("deadbeef", 7, 10, 2);
        assert!(json.contains("\"experiments\": []"));
    }
}

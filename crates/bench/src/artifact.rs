//! Machine-readable bench artifacts: the `BENCH_<sha>.json` files the CI
//! `bench-smoke` job uploads on every push, recording mean probe counts and
//! wall-clock time per reproduced table so the performance trajectory of the
//! repository is tracked over time.
//!
//! The JSON is written by hand (the workspace is offline; no serde) through
//! [`ArtifactStream`], a **streaming row writer**: the header goes out when
//! the stream opens, every row is flushed to the sink the moment it is
//! recorded, and the footer (including the process's peak RSS) closes the
//! file. Memory stays constant no matter how many rows an experiment
//! produces — the million-element `scale` experiment writes its cells as
//! they complete instead of accumulating tables. [`BenchArtifact`] is the
//! in-memory collector layered on top for tests and small tools; its
//! `to_json` drives the same streaming writer over a byte buffer, so there
//! is exactly one serialisation path.

use std::io::{self, Write};
use std::time::Duration;

use probequorum::prelude::Table;

/// An incremental `BENCH_<sha>.json` writer: open with [`ArtifactStream::new`]
/// (writes the header), record experiments with
/// [`ArtifactStream::record_table`] or the `begin_experiment` / `row` /
/// `end_experiment` triple (each row is flushed immediately), and close with
/// [`ArtifactStream::finish`] (writes the footer). The emitted document
/// matches the `probequorum-bench/1` schema parsed by
/// [`crate::parse_artifact`].
#[derive(Debug)]
pub struct ArtifactStream<W: Write> {
    sink: W,
    experiments: usize,
    rows_in_current: usize,
    in_experiment: bool,
}

impl<W: Write> ArtifactStream<W> {
    /// Opens a stream and writes the artifact header.
    ///
    /// `sha` identifies the commit (CI passes `GITHUB_SHA`); `seed`, `trials`
    /// and `threads` pin the reproduction configuration so two artifacts are
    /// comparable only when they match.
    pub fn new(
        mut sink: W,
        sha: &str,
        seed: u64,
        trials: usize,
        threads: usize,
    ) -> io::Result<Self> {
        write!(
            sink,
            "{{\n  \"schema\": \"probequorum-bench/1\",\n  \"sha\": {},\n  \"seed\": {seed},\n  \
             \"trials\": {trials},\n  \"threads\": {threads},\n  \"experiments\": [",
            json_string(sha)
        )?;
        Ok(ArtifactStream {
            sink,
            experiments: 0,
            rows_in_current: 0,
            in_experiment: false,
        })
    }

    /// Starts one experiment record: name and column headers go out
    /// immediately; rows follow via [`ArtifactStream::row`].
    ///
    /// # Panics
    ///
    /// Panics if the previous experiment was not closed with
    /// [`ArtifactStream::end_experiment`].
    pub fn begin_experiment(&mut self, name: &str, columns: &[String]) -> io::Result<()> {
        assert!(
            !self.in_experiment,
            "close the previous experiment before starting another"
        );
        if self.experiments > 0 {
            self.sink.write_all(b",")?;
        }
        self.experiments += 1;
        self.in_experiment = true;
        self.rows_in_current = 0;
        write!(
            self.sink,
            "\n    {{\n      \"name\": {},\n      \"columns\": {},\n      \"rows\": [",
            json_string(name),
            json_string_array(columns)
        )
    }

    /// Appends one row to the open experiment and flushes it to the sink, so
    /// partial progress of a long experiment is on disk before it finishes.
    ///
    /// # Panics
    ///
    /// Panics if no experiment is open.
    pub fn row(&mut self, cells: &[String]) -> io::Result<()> {
        assert!(
            self.in_experiment,
            "begin an experiment before writing rows"
        );
        if self.rows_in_current > 0 {
            self.sink.write_all(b",")?;
        }
        self.rows_in_current += 1;
        write!(self.sink, "\n        {}", json_string_array(cells))?;
        self.sink.flush()
    }

    /// Closes the open experiment, recording its wall-clock time (known only
    /// once the last row is in — which is why `wall_ms` trails the rows; the
    /// parser is field-order independent).
    ///
    /// # Panics
    ///
    /// Panics if no experiment is open.
    pub fn end_experiment(&mut self, wall: Duration) -> io::Result<()> {
        assert!(self.in_experiment, "no experiment to close");
        self.in_experiment = false;
        if self.rows_in_current > 0 {
            self.sink.write_all(b"\n      ")?;
        }
        write!(
            self.sink,
            "],\n      \"wall_ms\": {:.3}\n    }}",
            wall.as_secs_f64() * 1_000.0
        )?;
        self.sink.flush()
    }

    /// Records a whole experiment from an in-memory table: a
    /// `begin_experiment` / per-row `row` / `end_experiment` sequence.
    pub fn record_table(&mut self, name: &str, wall: Duration, table: &Table) -> io::Result<()> {
        self.begin_experiment(name, table.headers())?;
        for row in table.rows() {
            self.row(row)?;
        }
        self.end_experiment(wall)
    }

    /// Writes the artifact footer — including the process's peak resident-set
    /// size when known (see [`crate::peak_rss_bytes`]) — and returns the
    /// sink.
    ///
    /// # Panics
    ///
    /// Panics if an experiment is still open.
    pub fn finish(mut self, peak_rss_bytes: Option<u64>) -> io::Result<W> {
        assert!(!self.in_experiment, "close the open experiment first");
        if self.experiments > 0 {
            self.sink.write_all(b"\n  ")?;
        }
        match peak_rss_bytes {
            Some(bytes) => write!(self.sink, "],\n  \"peak_rss_bytes\": {bytes}\n}}\n")?,
            None => self.sink.write_all(b"]\n}\n")?,
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// A collector of per-experiment results, serialisable to JSON.
///
/// This is the buffered convenience layer over [`ArtifactStream`] for tests
/// and small tools; long-running producers (the `reproduce` binary) stream
/// rows straight to disk instead.
#[derive(Debug, Default)]
pub struct BenchArtifact {
    records: Vec<ExperimentRecord>,
}

/// One reproduced experiment: its name, wall-clock time and output table.
#[derive(Debug)]
struct ExperimentRecord {
    name: String,
    wall: Duration,
    table: Table,
}

impl BenchArtifact {
    /// An empty artifact.
    pub fn new() -> Self {
        BenchArtifact::default()
    }

    /// Records one experiment's table and wall-clock time.
    pub fn record(&mut self, name: impl Into<String>, wall: Duration, table: Table) {
        self.records.push(ExperimentRecord {
            name: name.into(),
            wall,
            table,
        });
    }

    /// Number of recorded experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialises the artifact to JSON by replaying every record through
    /// [`ArtifactStream`] over a byte buffer.
    ///
    /// `sha` identifies the commit (CI passes `GITHUB_SHA`); `seed`,
    /// `trials` and `threads` pin the reproduction configuration so two
    /// artifacts are comparable only when they match.
    pub fn to_json(&self, sha: &str, seed: u64, trials: usize, threads: usize) -> String {
        let mut stream = ArtifactStream::new(Vec::with_capacity(4096), sha, seed, trials, threads)
            .expect("writing to a byte buffer cannot fail");
        for record in &self.records {
            stream
                .record_table(&record.name, record.wall, &record.table)
                .expect("writing to a byte buffer cannot fail");
        }
        let bytes = stream
            .finish(None)
            .expect("writing to a byte buffer cannot fail");
        String::from_utf8(bytes).expect("artifact JSON is UTF-8")
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a slice of strings as a JSON array literal.
fn json_string_array(values: &[String]) -> String {
    let cells: Vec<String> = values.iter().map(|v| json_string(v)).collect();
    format!("[{}]", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut table = Table::new(["system", "mean"]);
        table.add_row(vec!["Maj".into(), "4.125".into()]);
        table.add_row(vec!["say \"hi\"\\".into(), "1.000".into()]);
        table
    }

    #[test]
    fn artifact_serialises_all_records() {
        let mut artifact = BenchArtifact::new();
        assert!(artifact.is_empty());
        artifact.record("table1", Duration::from_millis(1500), sample_table());
        artifact.record("zoned", Duration::from_micros(250), sample_table());
        assert_eq!(artifact.len(), 2);

        let json = artifact.to_json("abc123", 2001, 200, 1);
        assert!(json.contains("\"schema\": \"probequorum-bench/1\""));
        assert!(json.contains("\"sha\": \"abc123\""));
        assert!(json.contains("\"name\": \"table1\""));
        assert!(json.contains("\"wall_ms\": 1500.000"));
        assert!(json.contains("\"wall_ms\": 0.250"));
        assert!(json.contains("[\"system\", \"mean\"]"));
        assert!(json.contains("[\"Maj\", \"4.125\"]"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        // The sample table's tricky row survives into valid JSON.
        let mut artifact = BenchArtifact::new();
        artifact.record("x", Duration::ZERO, sample_table());
        let json = artifact.to_json("", 1, 1, 1);
        assert!(json.contains("\"say \\\"hi\\\"\\\\\""));
    }

    #[test]
    fn empty_artifact_is_valid_json_shape() {
        let json = BenchArtifact::new().to_json("deadbeef", 7, 10, 2);
        assert!(json.contains("\"experiments\": []"));
    }

    #[test]
    fn stream_flushes_each_row_as_it_is_recorded() {
        // The streaming contract: after `row` returns, the row's bytes are in
        // the sink — a crash mid-experiment loses nothing already recorded.
        let mut stream = ArtifactStream::new(Vec::new(), "sha", 1, 10, 1).unwrap();
        stream
            .begin_experiment("scale", &["family".into(), "avail".into()])
            .unwrap();
        stream.row(&["Grid".into(), "0.500".into()]).unwrap();
        assert!(String::from_utf8(stream.sink.clone())
            .unwrap()
            .contains("[\"Grid\", \"0.500\"]"));
        stream.row(&["Tree".into(), "0.250".into()]).unwrap();
        stream.end_experiment(Duration::from_millis(3)).unwrap();
        let bytes = stream.finish(Some(123_456_789)).unwrap();
        let json = String::from_utf8(bytes).unwrap();
        assert!(json.contains("\"peak_rss_bytes\": 123456789"));
        // The streamed document parses under the artifact schema.
        let run = crate::parse_artifact(&json).expect("streamed artifact parses");
        assert_eq!(run.experiments.len(), 1);
        assert_eq!(run.experiments[0].rows.len(), 2);
        assert_eq!(run.peak_rss_bytes, Some(123_456_789));
    }

    #[test]
    fn stream_and_buffered_collector_emit_identical_documents() {
        let mut artifact = BenchArtifact::new();
        artifact.record("a", Duration::from_millis(2), sample_table());
        artifact.record("b", Duration::ZERO, Table::new(["x"]));
        let buffered = artifact.to_json("sha", 9, 100, 2);

        let mut stream = ArtifactStream::new(Vec::new(), "sha", 9, 100, 2).unwrap();
        stream
            .record_table("a", Duration::from_millis(2), &sample_table())
            .unwrap();
        stream
            .record_table("b", Duration::ZERO, &Table::new(["x"]))
            .unwrap();
        let streamed = String::from_utf8(stream.finish(None).unwrap()).unwrap();
        assert_eq!(buffered, streamed);
    }

    #[test]
    #[should_panic(expected = "begin an experiment")]
    fn rows_outside_an_experiment_panic() {
        let mut stream = ArtifactStream::new(Vec::new(), "s", 1, 1, 1).unwrap();
        let _ = stream.row(&["x".into()]);
    }
}

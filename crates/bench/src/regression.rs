//! The CI performance-regression gate: parse two `BENCH_<sha>.json`
//! artifacts (see [`crate::artifact`]), compare their throughput rows, and
//! render a markdown delta table for `$GITHUB_STEP_SUMMARY`.
//!
//! The gate enforces the **deterministic** metrics — the virtual-time
//! sessions/second of the `workload` and `network` experiments, the
//! million-element `scale` availabilities, the sim-vs-live `agree` flag
//! of the `live` and `chaos` experiments, and the certificate `agree` flags
//! of the `churn-delta` and `compose` experiments — all pure functions of
//! the seed and trial count, so any drop is a genuine behavioural change,
//! never runner noise. The wall-clock experiments (`throughput`,
//! `scale-throughput`, `live-throughput`, `chaos-throughput`) are reported
//! in the same table for context but never fail the gate: CI runners are
//! too noisy for hard wall-clock thresholds.
//!
//! The workspace is offline (no serde), so a ~100-line recursive-descent
//! JSON parser for the artifact's own schema lives here.

use std::collections::BTreeMap;

/// A parsed JSON value (only what the artifact schema needs).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("JSON parse error at byte {}: {message}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(&byte) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match byte {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.error("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.error("invalid UTF-8"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("invalid number"))
    }
}

/// One experiment of a parsed artifact.
#[derive(Debug, Clone)]
pub struct BenchExperiment {
    /// Experiment name (`"workload"`, `"network"`, …).
    pub name: String,
    /// Wall-clock milliseconds the experiment took.
    pub wall_ms: f64,
    /// Column headers of the recorded table.
    pub columns: Vec<String>,
    /// Table rows, as rendered strings.
    pub rows: Vec<Vec<String>>,
}

/// A parsed `BENCH_<sha>.json` artifact.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Commit the artifact was produced from.
    pub sha: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// `REPRO_TRIALS` of the run.
    pub trials: u64,
    /// Peak resident-set size of the producing process, when the artifact
    /// recorded one (linux runs of the `reproduce` binary do).
    pub peak_rss_bytes: Option<u64>,
    /// The recorded experiments.
    pub experiments: Vec<BenchExperiment>,
}

impl BenchRun {
    /// Looks an experiment up by name.
    pub fn experiment(&self, name: &str) -> Option<&BenchExperiment> {
        self.experiments.iter().find(|e| e.name == name)
    }
}

/// Parses a `BENCH_<sha>.json` artifact (the schema written by
/// [`crate::BenchArtifact::to_json`]).
pub fn parse_artifact(json: &str) -> Result<BenchRun, String> {
    let mut parser = Parser::new(json);
    let root = parser.value()?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "probequorum-bench/1" {
        return Err(format!("unsupported artifact schema '{schema}'"));
    }
    let experiments = root
        .get("experiments")
        .and_then(Json::as_array)
        .ok_or("missing experiments array")?
        .iter()
        .map(|entry| {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or("experiment without name")?
                .to_string();
            let wall_ms = entry.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
            let strings = |value: &Json| -> Vec<String> {
                value
                    .as_array()
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|v| v.as_str().map(String::from))
                    .collect()
            };
            let columns = entry.get("columns").map(&strings).unwrap_or_default();
            let rows = entry
                .get("rows")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .map(&strings)
                .collect();
            Ok(BenchExperiment {
                name,
                wall_ms,
                columns,
                rows,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchRun {
        sha: root
            .get("sha")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        seed: root.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        trials: root.get("trials").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        peak_rss_bytes: root
            .get("peak_rss_bytes")
            .and_then(Json::as_f64)
            .map(|b| b as u64),
        experiments,
    })
}

/// One gated (or reported) metric: which experiment, which column carries
/// the throughput number, which columns identify a row, and whether a drop
/// fails the gate.
struct Gate {
    experiment: &'static str,
    metric: &'static str,
    keys: &'static [&'static str],
    enforced: bool,
}

/// Deterministic metrics (virtual-time throughputs, the million-element
/// `scale` availabilities) are enforced; wall-clock rates are reported only.
const GATES: &[Gate] = &[
    Gate {
        experiment: "workload",
        metric: "thr_per_s",
        keys: &["system", "n", "strategy", "workload", "scenario"],
        enforced: true,
    },
    Gate {
        experiment: "network",
        metric: "thr_per_s",
        keys: &["system", "n", "strategy", "net", "policy", "scenario"],
        enforced: true,
    },
    Gate {
        experiment: "scale",
        metric: "avail",
        keys: &["family", "n", "p"],
        enforced: true,
    },
    Gate {
        // Delta-vs-scratch agreement, printed "1"/"0": any step of any
        // churn timeline where the incremental evaluator disagreed with
        // from-scratch evaluation flips the flag and fails the gate.
        experiment: "churn-delta",
        metric: "agree",
        keys: &["family", "n", "regime"],
        enforced: true,
    },
    Gate {
        // Composition certificates, printed "1"/"0": the flag ANDs every
        // cross-check a row runs (intersection, lane-vs-scalar,
        // delta-vs-scratch, native bit-identity, availability-bound
        // containment, sim-vs-live), so any broken certificate fails the
        // gate as a 100 % drop.
        experiment: "compose",
        metric: "agree",
        keys: &["spec", "n", "model"],
        enforced: true,
    },
    Gate {
        // Sim-vs-live agreement, printed "1"/"0": a flip to "0" is a 100 %
        // drop, so any divergence of the live runtime fails the gate.
        experiment: "live",
        metric: "agree",
        keys: &["system", "n", "strategy", "scenario", "policy"],
        enforced: true,
    },
    Gate {
        // Same flip-to-zero contract for the chaos battery: the live
        // runtime must reproduce the simulator's observables (including the
        // crash-loss ledger) and drain its queues on every scenario.
        experiment: "chaos",
        metric: "agree",
        keys: &["system", "n", "strategy", "scenario", "policy"],
        enforced: true,
    },
    Gate {
        experiment: "live-throughput",
        metric: "sessions_per_s",
        keys: &["system", "n", "scenario", "policy"],
        enforced: false,
    },
    Gate {
        experiment: "chaos-throughput",
        metric: "sessions_per_s",
        keys: &["system", "n", "scenario", "policy"],
        enforced: false,
    },
    Gate {
        experiment: "throughput",
        metric: "trials_per_sec",
        keys: &["family", "n", "path"],
        enforced: false,
    },
    Gate {
        experiment: "scale-throughput",
        metric: "lane_trials_per_s",
        keys: &["family", "n", "width"],
        enforced: false,
    },
    Gate {
        experiment: "churn-delta-throughput",
        metric: "steps_per_s",
        keys: &["family", "n", "path"],
        enforced: false,
    },
];

/// The result of a regression check.
#[derive(Debug)]
pub struct RegressionReport {
    /// The markdown delta table (for stdout and `$GITHUB_STEP_SUMMARY`).
    pub markdown: String,
    /// Human-readable gate failures; empty means the gate passes.
    pub failures: Vec<String>,
}

impl RegressionReport {
    /// Whether the gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn keyed_rows(
    experiment: &BenchExperiment,
    keys: &[&str],
    metric: &str,
) -> Result<BTreeMap<String, f64>, String> {
    let key_indices: Vec<usize> = keys
        .iter()
        .map(|key| {
            experiment
                .columns
                .iter()
                .position(|c| c == key)
                .ok_or_else(|| format!("{}: missing key column '{key}'", experiment.name))
        })
        .collect::<Result<_, _>>()?;
    let metric_index = experiment
        .columns
        .iter()
        .position(|c| c == metric)
        .ok_or_else(|| format!("{}: missing metric column '{metric}'", experiment.name))?;
    let mut out = BTreeMap::new();
    for row in &experiment.rows {
        let key = key_indices
            .iter()
            .map(|&i| row.get(i).map(String::as_str).unwrap_or("?"))
            .collect::<Vec<_>>()
            .join(" · ");
        let value: f64 = row
            .get(metric_index)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{}: unparsable {metric} in row {key}", experiment.name))?;
        out.insert(key, value);
    }
    Ok(out)
}

/// Compares `current` against `baseline`: enforced metrics may not drop by
/// more than `tolerance` (a fraction, e.g. `0.25`), and every baseline row
/// must still exist. Returns the markdown delta table and the failures.
pub fn check_regression(
    current: &BenchRun,
    baseline: &BenchRun,
    tolerance: f64,
) -> RegressionReport {
    let mut failures = Vec::new();
    let mut markdown = String::new();
    markdown.push_str("## Bench regression check\n\n");
    markdown.push_str(&format!(
        "baseline `{}` (seed {}, trials {}) → current `{}` (seed {}, trials {}), \
         tolerance {:.0}%\n\n",
        baseline.sha,
        baseline.seed,
        baseline.trials,
        current.sha,
        current.seed,
        current.trials,
        tolerance * 100.0
    ));
    if current.peak_rss_bytes.is_some() || baseline.peak_rss_bytes.is_some() {
        let mib = |bytes: Option<u64>| match bytes {
            Some(b) => format!("{:.0} MiB", b as f64 / (1024.0 * 1024.0)),
            None => "unknown".to_string(),
        };
        markdown.push_str(&format!(
            "peak RSS: baseline {} → current {}\n\n",
            mib(baseline.peak_rss_bytes),
            mib(current.peak_rss_bytes)
        ));
    }
    if current.seed != baseline.seed || current.trials != baseline.trials {
        failures.push(format!(
            "artifacts are not comparable: baseline ran seed {} / trials {}, current ran \
             seed {} / trials {} — refresh the baseline with the pinned configuration",
            baseline.seed, baseline.trials, current.seed, current.trials
        ));
    }
    markdown.push_str("| experiment | row | baseline | current | Δ | status |\n");
    markdown.push_str("|---|---|---:|---:|---:|---|\n");
    for gate in GATES {
        let (Some(base_exp), Some(cur_exp)) = (
            baseline.experiment(gate.experiment),
            current.experiment(gate.experiment),
        ) else {
            // An enforced gate must have rows on BOTH sides: a baseline
            // regenerated without `workload`/`network` would otherwise
            // silently disable the check forever.
            if gate.enforced {
                let missing_from = if baseline.experiment(gate.experiment).is_none() {
                    "baseline (regenerate it with the pinned recipe)"
                } else {
                    "current artifact"
                };
                failures.push(format!(
                    "enforced experiment '{}' is missing from the {missing_from}",
                    gate.experiment
                ));
            }
            continue;
        };
        let base_rows = match keyed_rows(base_exp, gate.keys, gate.metric) {
            Ok(rows) => rows,
            Err(error) => {
                failures.push(format!("baseline {error}"));
                continue;
            }
        };
        let cur_rows = match keyed_rows(cur_exp, gate.keys, gate.metric) {
            Ok(rows) => rows,
            Err(error) => {
                failures.push(format!("current {error}"));
                continue;
            }
        };
        for (key, base_value) in &base_rows {
            let Some(cur_value) = cur_rows.get(key) else {
                if gate.enforced {
                    failures.push(format!(
                        "{}: row '{key}' disappeared from the current artifact",
                        gate.experiment
                    ));
                }
                markdown.push_str(&format!(
                    "| {} | {key} | {base_value:.1} | — | — | {} |\n",
                    gate.experiment,
                    if gate.enforced {
                        "**FAIL** (missing)"
                    } else {
                        "info"
                    }
                ));
                continue;
            };
            if *base_value == 0.0 {
                // No baseline signal to compute a percentage against: a
                // 0 → ε flip is a new signal, not a 0.0% no-op (and never
                // Inf/NaN in the table). It cannot regress — only inform.
                markdown.push_str(&format!(
                    "| {} | {key} | 0.0 | {cur_value:.1} | new signal | info |\n",
                    gate.experiment
                ));
                continue;
            }
            let delta = (cur_value - base_value) / base_value;
            let regressed = gate.enforced && delta < -tolerance;
            if regressed {
                failures.push(format!(
                    "{}: '{key}' dropped {:.1}% ({base_value:.1} → {cur_value:.1}, \
                     tolerance {:.0}%)",
                    gate.experiment,
                    -delta * 100.0,
                    tolerance * 100.0
                ));
            }
            let status = if regressed {
                "**FAIL**"
            } else if gate.enforced {
                "ok"
            } else {
                "info"
            };
            markdown.push_str(&format!(
                "| {} | {key} | {base_value:.1} | {cur_value:.1} | {:+.1}% | {status} |\n",
                gate.experiment,
                delta * 100.0
            ));
        }
        for key in cur_rows.keys() {
            if !base_rows.contains_key(key) {
                markdown.push_str(&format!(
                    "| {} | {key} | — | new | — | info |\n",
                    gate.experiment
                ));
            }
        }
    }
    markdown.push('\n');
    if failures.is_empty() {
        markdown.push_str("**PASS** — no enforced throughput row regressed.\n");
    } else {
        markdown.push_str(&format!("**FAIL** — {} problem(s):\n", failures.len()));
        for failure in &failures {
            markdown.push_str(&format!("- {failure}\n"));
        }
    }
    RegressionReport { markdown, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchArtifact;
    use probequorum::prelude::Table;
    use std::time::Duration;

    /// A minimal but gate-complete artifact: `workload` rows as given,
    /// constant `network`, `scale`, `live`, `chaos`, `churn-delta` and
    /// `compose` rows (every enforced gate needs rows on both sides), and
    /// optional wall-clock `throughput` / `scale-throughput` /
    /// `live-throughput` / `chaos-throughput` rows.
    fn artifact_parts(thr: &[(&str, f64)], wall_rate: Option<f64>) -> String {
        artifact_parts_full(thr, wall_rate, 0.875, "1", "1", "1", "1")
    }

    fn artifact_parts_with_scale(
        thr: &[(&str, f64)],
        wall_rate: Option<f64>,
        scale_avail: f64,
    ) -> String {
        artifact_parts_full(thr, wall_rate, scale_avail, "1", "1", "1", "1")
    }

    fn artifact_parts_full(
        thr: &[(&str, f64)],
        wall_rate: Option<f64>,
        scale_avail: f64,
        live_agree: &str,
        chaos_agree: &str,
        churn_delta_agree: &str,
        compose_agree: &str,
    ) -> String {
        let mut table = Table::new([
            "system",
            "n",
            "strategy",
            "workload",
            "scenario",
            "thr_per_s",
        ]);
        for (name, value) in thr {
            table.add_row(vec![
                (*name).into(),
                "15".into(),
                "Probe_Maj".into(),
                "open".into(),
                "iid".into(),
                format!("{value:.1}"),
            ]);
        }
        let mut net = Table::new([
            "system",
            "n",
            "strategy",
            "net",
            "policy",
            "scenario",
            "thr_per_s",
        ]);
        net.add_row(vec![
            "Maj".into(),
            "15".into(),
            "Probe_Maj".into(),
            "clean".into(),
            "naive".into(),
            "iid".into(),
            "500.0".into(),
        ]);
        let mut scale = Table::new([
            "family",
            "n",
            "p",
            "trials",
            "avail",
            "fail_prob",
            "std_err",
        ]);
        scale.add_row(vec![
            "Grid".into(),
            "1000000".into(),
            "0.25".into(),
            "500".into(),
            format!("{scale_avail:.6}"),
            format!("{:.6}", 1.0 - scale_avail),
            "0.010000".into(),
        ]);
        let mut live = Table::new([
            "system", "n", "strategy", "scenario", "policy", "sessions", "agree", "ok_rate",
            "probes", "msgs", "wasted",
        ]);
        live.add_row(vec![
            "Maj".into(),
            "15".into(),
            "Probe_Maj".into(),
            "lossy".into(),
            "r3/b300us".into(),
            "60".into(),
            live_agree.into(),
            "0.950".into(),
            "8.00".into(),
            "16.50".into(),
            "0.020".into(),
        ]);
        let mut chaos = Table::new([
            "system",
            "n",
            "strategy",
            "scenario",
            "policy",
            "sessions",
            "agree",
            "ok_rate",
            "probes",
            "wasted",
            "degraded",
            "lost",
            "recovered",
            "recov_max_us",
        ]);
        chaos.add_row(vec![
            "Maj".into(),
            "15".into(),
            "Probe_Maj".into(),
            "crash-minority".into(),
            "r2/b300us+health".into(),
            "60".into(),
            chaos_agree.into(),
            "0.900".into(),
            "7.50".into(),
            "0.030".into(),
            "4".into(),
            "11".into(),
            "5/5".into(),
            "1840".into(),
        ]);
        let mut churn_delta = Table::new([
            "family",
            "n",
            "regime",
            "fail",
            "repair",
            "steps",
            "flips",
            "verdict_changes",
            "outage_frac",
            "agree",
        ]);
        churn_delta.add_row(vec![
            "Grid".into(),
            "121".into(),
            "slow".into(),
            "0.016".into(),
            "0.125".into(),
            "500".into(),
            "840".into(),
            "6".into(),
            "0.040".into(),
            churn_delta_agree.into(),
        ]);
        let mut compose = Table::new([
            "spec",
            "n",
            "model",
            "min_q",
            "max_q",
            "quorums",
            "blocking",
            "intersect",
            "avail_lo",
            "avail_hi",
            "mc_avail",
            "agree",
        ]);
        compose.add_row(vec![
            "org-maj(5x5)".into(),
            "25".into(),
            "iid(p=0.3)".into(),
            "9".into(),
            "9".into(),
            "10000".into(),
            "10000".into(),
            "1".into(),
            "0.803".into(),
            "1.000".into(),
            "0.954".into(),
            compose_agree.into(),
        ]);
        let mut artifact = BenchArtifact::new();
        artifact.record("workload", Duration::from_millis(5), table);
        artifact.record("network", Duration::from_millis(5), net);
        artifact.record("scale", Duration::from_millis(5), scale);
        artifact.record("live", Duration::from_millis(5), live);
        artifact.record("chaos", Duration::from_millis(5), chaos);
        artifact.record("churn-delta", Duration::from_millis(5), churn_delta);
        artifact.record("compose", Duration::from_millis(5), compose);
        if let Some(rate) = wall_rate {
            let mut wall = Table::new(["family", "n", "path", "trials_per_sec"]);
            wall.add_row(vec![
                "Maj".into(),
                "64".into(),
                "probes/engine".into(),
                format!("{rate:.1}"),
            ]);
            artifact.record("throughput", Duration::ZERO, wall);
            let mut lanes = Table::new([
                "family",
                "n",
                "width",
                "p",
                "trials",
                "wall_ms",
                "lane_trials_per_s",
            ]);
            lanes.add_row(vec![
                "Grid".into(),
                "1000000".into(),
                "8".into(),
                "0.25".into(),
                "500".into(),
                "12.0".into(),
                format!("{:.0}", rate * 1.0e6),
            ]);
            artifact.record("scale-throughput", Duration::ZERO, lanes);
            let mut live_rates = Table::new([
                "system",
                "n",
                "scenario",
                "policy",
                "sessions",
                "wall_ms",
                "sessions_per_s",
                "p50_ms",
                "p99_ms",
            ]);
            live_rates.add_row(vec![
                "Maj".into(),
                "15".into(),
                "lossy".into(),
                "r3/b300us".into(),
                "60".into(),
                "4.0".into(),
                format!("{:.0}", rate * 100.0),
                "0.050".into(),
                "0.400".into(),
            ]);
            artifact.record("live-throughput", Duration::ZERO, live_rates);
            let mut chaos_rates = Table::new([
                "system",
                "n",
                "scenario",
                "policy",
                "sessions",
                "wall_ms",
                "sessions_per_s",
                "p50_ms",
                "p99_ms",
            ]);
            chaos_rates.add_row(vec![
                "Maj".into(),
                "15".into(),
                "crash-minority".into(),
                "r2/b300us+health".into(),
                "60".into(),
                "4.0".into(),
                format!("{:.0}", rate * 100.0),
                "0.050".into(),
                "0.400".into(),
            ]);
            artifact.record("chaos-throughput", Duration::ZERO, chaos_rates);
        }
        artifact.to_json("testsha", 2001, 500, 1)
    }

    fn artifact_with(thr: &[(&str, f64)]) -> String {
        artifact_parts(thr, None)
    }

    #[test]
    fn round_trips_the_artifact_schema() {
        let json = artifact_with(&[("Maj", 1234.5), ("Tree", 999.0)]);
        let run = parse_artifact(&json).expect("own schema parses");
        assert_eq!(run.sha, "testsha");
        assert_eq!(run.seed, 2001);
        assert_eq!(run.trials, 500);
        let workload = run.experiment("workload").expect("recorded");
        assert_eq!(workload.rows.len(), 2);
        assert_eq!(workload.columns[5], "thr_per_s");
        assert_eq!(workload.rows[0][5], "1234.5");
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let mut table = Table::new(["system", "mean"]);
        table.add_row(vec!["say \"hi\"\\ \n".into(), "1.0".into()]);
        let mut artifact = BenchArtifact::new();
        artifact.record("x", Duration::ZERO, table);
        let run = parse_artifact(&artifact.to_json("s", 1, 1, 1)).expect("escapes survive");
        assert_eq!(run.experiments[0].rows[0][0], "say \"hi\"\\ \n");
        assert!(parse_artifact("{").is_err());
        assert!(parse_artifact("[]").is_err(), "wrong root shape");
        assert!(parse_artifact("{\"schema\": \"other/1\"}").is_err());
    }

    #[test]
    fn matching_artifacts_pass() {
        let json = artifact_with(&[("Maj", 1000.0)]);
        let run = parse_artifact(&json).unwrap();
        let report = check_regression(&run, &run, 0.25);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.markdown.contains("**PASS**"));
        assert!(report.markdown.contains("| workload |"));
    }

    #[test]
    fn drops_beyond_tolerance_fail_and_within_pass() {
        let baseline = parse_artifact(&artifact_with(&[("Maj", 1000.0)])).unwrap();
        let slower = parse_artifact(&artifact_with(&[("Maj", 700.0)])).unwrap();
        let report = check_regression(&slower, &baseline, 0.25);
        assert!(!report.passed());
        assert!(report.markdown.contains("**FAIL**"));
        assert!(report.failures[0].contains("dropped 30.0%"));
        // The same drop passes a looser gate, and improvements always pass.
        assert!(check_regression(&slower, &baseline, 0.35).passed());
        let faster = parse_artifact(&artifact_with(&[("Maj", 2000.0)])).unwrap();
        assert!(check_regression(&faster, &baseline, 0.25).passed());
    }

    #[test]
    fn a_zero_baseline_reports_a_new_signal_not_a_percentage() {
        // Regression: a 0 → ε flip used to render as "+0.0% ok" (and a naive
        // division would print Inf/NaN). It must show up as a clean
        // informational "new signal" row and never fail the gate.
        let baseline = parse_artifact(&artifact_with(&[("Maj", 0.0)])).unwrap();
        let current = parse_artifact(&artifact_with(&[("Maj", 750.0)])).unwrap();
        let report = check_regression(&current, &baseline, 0.25);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report
            .markdown
            .contains("| 0.0 | 750.0 | new signal | info |"));
        assert!(!report.markdown.contains("inf%"));
        assert!(!report.markdown.contains("NaN%"));
    }

    #[test]
    fn a_baseline_without_an_enforced_experiment_fails_loudly() {
        // A baseline regenerated from a partial experiment list must not
        // silently disable the gate.
        let empty = parse_artifact(&BenchArtifact::new().to_json("empty", 2001, 500, 1)).unwrap();
        let current = parse_artifact(&artifact_with(&[("Maj", 1000.0)])).unwrap();
        let report = check_regression(&current, &empty, 0.25);
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("missing from the baseline")));
    }

    #[test]
    fn missing_rows_and_mismatched_configs_fail() {
        let baseline = parse_artifact(&artifact_with(&[("Maj", 1000.0), ("Tree", 500.0)])).unwrap();
        let partial = parse_artifact(&artifact_with(&[("Maj", 1000.0)])).unwrap();
        let report = check_regression(&partial, &baseline, 0.25);
        assert!(!report.passed());
        assert!(report.failures[0].contains("disappeared"));

        let mut other_config = baseline.clone();
        other_config.trials = 200;
        let report = check_regression(&other_config, &baseline, 0.25);
        assert!(!report.passed());
        assert!(report.failures[0].contains("not comparable"));
    }

    #[test]
    fn wall_clock_gates_are_informational() {
        // A 100x wall-clock slowdown is reported but never fails the gate.
        let baseline = parse_artifact(&artifact_parts(&[("Maj", 1000.0)], Some(100.0))).unwrap();
        let current = parse_artifact(&artifact_parts(&[("Maj", 1000.0)], Some(1.0))).unwrap();
        let report = check_regression(&current, &baseline, 0.25);
        assert!(
            report.passed(),
            "wall-clock drops must not fail the gate: {:?}",
            report.failures
        );
        assert!(report.markdown.contains("| throughput |"));
        assert!(report.markdown.contains("info"));
        // Lane-engine wall-clock rates ride the same informational path: a
        // 1000x slowdown in lane_trials_per_s never fails the gate.
        assert!(report.markdown.contains("| scale-throughput |"));
        // As do the live runtime's wall-clock sessions/second.
        assert!(report.markdown.contains("| live-throughput |"));
    }

    #[test]
    fn scale_availability_is_an_enforced_gate() {
        // The million-element availabilities are deterministic functions of
        // (seed, trials); a large drop means the lane engine changed
        // behaviour and must fail the gate.
        let baseline =
            parse_artifact(&artifact_parts_with_scale(&[("Maj", 1000.0)], None, 0.9)).unwrap();
        let broken =
            parse_artifact(&artifact_parts_with_scale(&[("Maj", 1000.0)], None, 0.5)).unwrap();
        let report = check_regression(&broken, &baseline, 0.25);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("scale:")));
        assert!(report.markdown.contains("| scale |"));
    }

    #[test]
    fn a_live_agreement_flip_fails_the_gate() {
        // `agree` is printed "1"/"0": a flip to "0" is a 100 % drop on an
        // enforced metric, so a live runtime that stops reproducing the
        // simulator's observables cannot pass CI.
        let baseline = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "1",
            "1",
            "1",
            "1",
        ))
        .unwrap();
        let diverged = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "0",
            "1",
            "1",
            "1",
        ))
        .unwrap();
        let report = check_regression(&diverged, &baseline, 0.25);
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("live:")),
            "{:?}",
            report.failures
        );
        assert!(report.markdown.contains("| live |"));
        // Agreement holding on both sides passes.
        let report = check_regression(&baseline, &baseline, 0.25);
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn a_chaos_agreement_flip_fails_the_gate() {
        // The chaos battery's agree flag carries the crash-loss ledger and
        // queue-drain invariant too: a live runtime that leaks requests or
        // diverges under crash/stall/restart cannot pass CI.
        let baseline = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "1",
            "1",
            "1",
            "1",
        ))
        .unwrap();
        let diverged = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "1",
            "0",
            "1",
            "1",
        ))
        .unwrap();
        let report = check_regression(&diverged, &baseline, 0.25);
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("chaos:")),
            "{:?}",
            report.failures
        );
        assert!(report.markdown.contains("| chaos |"));
        // A baseline regenerated without the chaos experiment must fail
        // loudly rather than silently disabling the gate.
        let mut without = baseline.clone();
        without.experiments.retain(|e| e.name != "chaos");
        let report = check_regression(&baseline, &without, 0.25);
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("'chaos' is missing from the baseline")));
    }

    #[test]
    fn a_churn_delta_agreement_flip_fails_the_gate() {
        // The delta engine's equivalence flag is enforced: any churn step
        // where incremental evaluation disagreed with from-scratch
        // evaluation flips agree to "0" — a 100 % drop — and fails CI.
        let baseline = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "1",
            "1",
            "1",
            "1",
        ))
        .unwrap();
        let diverged = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "1",
            "1",
            "0",
            "1",
        ))
        .unwrap();
        let report = check_regression(&diverged, &baseline, 0.25);
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("churn-delta:")),
            "{:?}",
            report.failures
        );
        assert!(report.markdown.contains("| churn-delta |"));
        // A baseline regenerated without the experiment fails loudly.
        let mut without = baseline.clone();
        without.experiments.retain(|e| e.name != "churn-delta");
        let report = check_regression(&baseline, &without, 0.25);
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("'churn-delta' is missing from the baseline")));
    }

    #[test]
    fn a_compose_certificate_flip_fails_the_gate() {
        // The compose experiment's agree flag ANDs every certificate a row
        // runs (intersection, lane/delta/native agreement, availability
        // bounds, sim-vs-live): a flip to "0" is a 100 % drop on an
        // enforced metric and fails CI.
        let baseline = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "1",
            "1",
            "1",
            "1",
        ))
        .unwrap();
        let broken = parse_artifact(&artifact_parts_full(
            &[("Maj", 1000.0)],
            None,
            0.875,
            "1",
            "1",
            "1",
            "0",
        ))
        .unwrap();
        let report = check_regression(&broken, &baseline, 0.25);
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("compose:")),
            "{:?}",
            report.failures
        );
        assert!(report.markdown.contains("| compose |"));
        // A baseline regenerated without the experiment fails loudly.
        let mut without = baseline.clone();
        without.experiments.retain(|e| e.name != "compose");
        let report = check_regression(&baseline, &without, 0.25);
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("'compose' is missing from the baseline")));
    }

    #[test]
    fn peak_rss_round_trips_and_is_reported() {
        let mut stream = crate::ArtifactStream::new(Vec::new(), "rss-sha", 2001, 500, 1).unwrap();
        stream
            .record_table("x", Duration::ZERO, &Table::new(["a"]))
            .unwrap();
        let json = String::from_utf8(stream.finish(Some(512 * 1024 * 1024)).unwrap()).unwrap();
        let with_rss = parse_artifact(&json).unwrap();
        assert_eq!(with_rss.peak_rss_bytes, Some(512 * 1024 * 1024));

        let without = parse_artifact(&artifact_with(&[("Maj", 1.0)])).unwrap();
        assert_eq!(without.peak_rss_bytes, None);

        let report = check_regression(&with_rss, &with_rss, 0.25);
        assert!(report
            .markdown
            .contains("peak RSS: baseline 512 MiB → current 512 MiB"));
        let no_rss_report = check_regression(&without, &without, 0.25);
        assert!(!no_rss_report.markdown.contains("peak RSS"));
    }
}

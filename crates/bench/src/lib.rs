//! Reproduction harness for every table and figure of Hassin & Peleg,
//! "Average probe complexity in quorum systems".
//!
//! The binary `reproduce` (in `src/bin/reproduce.rs`) dispatches to the
//! functions of this library; each function prints a plain-text table that
//! pairs the paper's claim with the value measured by this workspace.
//! `EXPERIMENTS.md` records a captured run.
//!
//! Every Monte-Carlo number is produced by the shared parallel evaluation
//! engine (`quorum_sim::eval`): each table function assembles one
//! [`EvalPlan`] of `(system, strategy, coloring-source)` cells and executes
//! it with a single [`EvalEngine::run`] call. Results are bit-identical for
//! any worker-thread count.
//!
//! The number of Monte-Carlo trials is controlled by the `REPRO_TRIALS`
//! environment variable (default 5000); the RNG seed by `REPRO_SEED`
//! (default 2001); the worker-thread count by `REPRO_THREADS` (default: all
//! cores). Runs are reproducible: the seed fully determines every number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use probequorum::analysis::availability::{
    exact_failure_probability as exact_fp, zoned_failure_probability, zoned_params,
};
use probequorum::prelude::*;
use probequorum::sim::eval::{
    erase_spec, erase_system, fit_points, typed_strategy, CellReport, ColoringSource, DynSystem,
    EvalEngine, EvalPlan,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

pub mod artifact;
pub mod regression;

pub use artifact::{ArtifactStream, BenchArtifact};
pub use regression::{check_regression, parse_artifact, BenchRun, RegressionReport};

/// Configuration of a reproduction run.
#[derive(Debug, Clone, Copy)]
pub struct ReproConfig {
    /// Monte-Carlo trials per measured cell.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the evaluation engine (0 = all cores).
    pub threads: usize,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            trials: 5_000,
            seed: 2_001,
            threads: 0,
        }
    }
}

impl ReproConfig {
    /// Reads the configuration from the `REPRO_TRIALS` / `REPRO_SEED` /
    /// `REPRO_THREADS` environment variables, falling back to the defaults.
    pub fn from_env() -> Self {
        let mut config = ReproConfig::default();
        if let Ok(value) = std::env::var("REPRO_TRIALS") {
            if let Ok(parsed) = value.parse() {
                config.trials = parsed;
            }
        }
        if let Ok(value) = std::env::var("REPRO_SEED") {
            if let Ok(parsed) = value.parse() {
                config.seed = parsed;
            }
        }
        if let Ok(value) = std::env::var("REPRO_THREADS") {
            if let Ok(parsed) = value.parse() {
                config.threads = parsed;
            }
        }
        config
    }

    /// The evaluation engine this configuration selects.
    pub fn engine(&self) -> EvalEngine {
        EvalEngine::with_threads(self.threads)
    }

    /// A fresh RNG for code that still samples directly (hard colorings in
    /// tests, exact solvers' tie-breaking).
    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// A base seed for one table, derived from the configured seed and the
    /// table's name so tables stay independent.
    fn section_seed(&self, section: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in section.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

/// The one construction path the experiments share: build a [`SystemSpec`]
/// and erase it. The concrete type survives behind `as_any` (see
/// [`erase_spec`]), so the typed paper strategies still apply to the result.
///
/// Sites that need the concrete value itself (hard-input distributions,
/// row-count arithmetic) still call the family constructors directly — the
/// spec layer proves those produce bit-identical systems.
fn spec_system(spec: SystemSpec) -> DynSystem {
    erase_spec(&spec).unwrap_or_else(|e| panic!("bench specs are valid by construction: {e}"))
}

/// [`spec_system`] for sized sweeps: picks the family's parameters from a
/// size hint through [`SystemSpec::family_with_size_hint`], the same path
/// the system registry uses.
fn build_spec_family(family: &str, size_hint: usize) -> DynSystem {
    let spec = SystemSpec::family_with_size_hint(family, size_hint)
        .unwrap_or_else(|| panic!("{family} is not a spec family"));
    spec_system(spec)
}

/// Fits a power law through the `(universe size, mean probes)` points of a
/// consecutive slice of engine cells (a sweep).
fn fit_cells(cells: &[CellReport]) -> PowerLawFit {
    fit_power_law(&fit_points(cells))
}

/// A [`ColoringSource`] drawing from the Triang/CW hard input family of
/// Theorem 4.6 (exactly one green element per row, uniformly placed).
pub fn cw_hard_source(wall: &Arc<CrumblingWalls>) -> ColoringSource {
    let wall = Arc::clone(wall);
    ColoringSource::generator("cw-hard(one green/row)", move |rng| {
        cw_hard_coloring(&wall, rng)
    })
}

/// A [`ColoringSource`] drawing from the HQS worst-case family `P` of
/// Lemma 4.11, *paired* on `pair_seed`: cells built with the same seed see
/// the identical coloring on every trial, so `R_Probe_HQS` and
/// `IR_Probe_HQS` are compared on common random inputs.
pub fn hqs_hard_source(height: usize, pair_seed: u64) -> ColoringSource {
    ColoringSource::paired_generator("hqs-hard(Lemma 4.11)", pair_seed, move |rng| {
        hqs_hard_coloring(height, rng)
    })
}

/// Reproduces **Table 1**: the probe complexity of Maj, Triang, Tree and HQS
/// in the probabilistic model (p = 1/2) and the randomized worst-case model.
pub fn table1(config: &ReproConfig) -> Table {
    let trials = config.trials;
    let mut plan = EvalPlan::new(config.section_seed("table1")).trials(trials);

    // ---- Plan every cell up front; one engine pass executes them all. ----
    let maj = spec_system(SystemSpec::Majority { n: 101 });
    let maj_reds = maj.universe_size().div_ceil(2); // the hard input: (n+1)/2 reds
    let probe_maj = typed_strategy::<Majority, _>(ProbeMaj::new());
    let r_probe_maj = typed_strategy::<Majority, _>(RProbeMaj::new());
    plan.probe(&maj, &probe_maj, ColoringSource::iid(0.5));
    plan.probe(
        &maj,
        &r_probe_maj,
        ColoringSource::exact_red_count(maj_reds),
    );

    let triang = Arc::new(CrumblingWalls::triang(13).unwrap());
    let triang_sys: DynSystem = triang.clone();
    let probe_cw = typed_strategy::<CrumblingWalls, _>(ProbeCw::new());
    let r_probe_cw = typed_strategy::<CrumblingWalls, _>(RProbeCw::new());
    plan.probe(&triang_sys, &probe_cw, ColoringSource::iid(0.5));
    // All one-green-per-row colorings of Triang are equivalent up to symmetry,
    // so averaging over the hard family estimates the worst-case expectation
    // without the upward bias of maximising over many noisy estimates.
    plan.probe_with_trials(
        &triang_sys,
        &r_probe_cw,
        cw_hard_source(&triang),
        trials.max(2_000),
    );

    let probe_tree = typed_strategy::<TreeQuorum, _>(ProbeTree::new());
    let tree_sweep_start = plan.cell_count();
    for height in 4..=9 {
        let tree = spec_system(SystemSpec::Tree { height });
        plan.probe_with_trials(
            &tree,
            &probe_tree,
            ColoringSource::iid(0.5),
            trials.min(3_000),
        );
    }
    let tree_sweep_end = plan.cell_count();

    let tree4 = TreeQuorum::new(4).unwrap();
    let hard = InputDistribution::tree_hard(&tree4);
    let colorings: Vec<Coloring> = hard.support().iter().map(|(c, _)| c.clone()).collect();
    let sample: Vec<Coloring> = colorings.into_iter().step_by(409).take(10).collect();
    let tree4_sys = erase_system(tree4);
    let r_probe_tree = typed_strategy::<TreeQuorum, _>(RProbeTree::new());
    let tree_worst_start = plan.cell_count();
    plan.probe_each_coloring(&tree4_sys, &r_probe_tree, &sample, (trials / 2).max(1_000));
    let tree_worst_end = plan.cell_count();

    let probe_hqs = typed_strategy::<Hqs, _>(ProbeHqs::new());
    let hqs_sweep_start = plan.cell_count();
    for height in 2..=6 {
        let hqs = spec_system(SystemSpec::Hqs { height });
        plan.probe_with_trials(
            &hqs,
            &probe_hqs,
            ColoringSource::iid(0.5),
            trials.min(3_000),
        );
    }
    let hqs_sweep_end = plan.cell_count();

    let report = config.engine().run(&plan);
    let cells = &report.cells;

    // ---- Assemble the table from the report. ----
    let mut table = Table::new(["system", "n", "model", "measured", "paper claim"]);
    let maj_n = cells[0].universe_size.unwrap();
    table.add_row(vec![
        "Maj".into(),
        maj_n.to_string(),
        "probabilistic p=1/2".into(),
        fmt(cells[0].estimate.mean),
        format!("n − Θ(√n) ≈ {}", fmt(bounds::maj_probabilistic(maj_n, 0.5))),
    ]);
    table.add_row(vec![
        "Maj".into(),
        maj_n.to_string(),
        "randomized worst case".into(),
        fmt(cells[1].estimate.mean),
        format!(
            "n − (n−1)/(n+3) = {}",
            fmt(bounds::maj_randomized_exact(maj_n))
        ),
    ]);

    let n = triang.universe_size();
    let k = triang.row_count();
    table.add_row(vec![
        "Triang".into(),
        n.to_string(),
        "probabilistic p=1/2".into(),
        fmt(cells[2].estimate.mean),
        format!("between 2k − Θ(√k) and 2k − 1 = {}", 2 * k - 1),
    ]);
    table.add_row(vec![
        "Triang".into(),
        n.to_string(),
        "randomized worst case".into(),
        fmt(cells[3].estimate.mean),
        format!(
            "(n+k)/2 = {} … (n+k)/2 + log k = {}",
            fmt(bounds::cw_randomized_lower(n, k)),
            fmt(bounds::triang_randomized_upper(n, k))
        ),
    ]);

    let tree_cells = &cells[tree_sweep_start..tree_sweep_end];
    let fit = fit_cells(tree_cells);
    table.add_row(vec![
        "Tree".into(),
        format!(
            "{}–{}",
            tree_cells.first().unwrap().universe_size.unwrap(),
            tree_cells.last().unwrap().universe_size.unwrap()
        ),
        "probabilistic p=1/2".into(),
        format!("exponent {}", fmt(fit.exponent)),
        format!(
            "O(n^{}) (log2 1.5)",
            fmt(bounds::tree_probabilistic_exponent(0.5))
        ),
    ]);
    let tree_worst = cells[tree_worst_start..tree_worst_end]
        .iter()
        .map(|c| c.estimate.mean)
        .fold(f64::NEG_INFINITY, f64::max);
    let tree_worst_n = cells[tree_worst_start].universe_size.unwrap();
    table.add_row(vec![
        "Tree".into(),
        tree_worst_n.to_string(),
        "randomized worst case".into(),
        fmt(tree_worst),
        format!(
            "2n/3 ≈ {} … 5n/6 ≈ {}",
            fmt(bounds::tree_randomized_lower(tree_worst_n)),
            fmt(bounds::tree_randomized_upper(tree_worst_n))
        ),
    ]);

    let hqs_cells = &cells[hqs_sweep_start..hqs_sweep_end];
    let fit = fit_cells(hqs_cells);
    table.add_row(vec![
        "HQS".into(),
        format!(
            "{}–{}",
            hqs_cells.first().unwrap().universe_size.unwrap(),
            hqs_cells.last().unwrap().universe_size.unwrap()
        ),
        "probabilistic p=1/2".into(),
        format!("exponent {}", fmt(fit.exponent)),
        format!(
            "Θ(n^{}) (log3 2.5)",
            fmt(bounds::hqs_probabilistic_exponent_symmetric())
        ),
    ]);
    let (plain_fit, improved_fit) = hqs_randomized_exponents(config);
    table.add_row(vec![
        "HQS".into(),
        "9–2187".into(),
        "randomized worst case".into(),
        format!("exponent {} (IR: {})", fmt(plain_fit), fmt(improved_fit)),
        format!(
            "Ω(n^{}) … O(n^{})",
            fmt(bounds::hqs_randomized_exponent_lower()),
            fmt(bounds::hqs_randomized_exponent_improved())
        ),
    ]);

    table
}

/// Draws a coloring from the hard input family of Theorem 4.6: exactly one
/// green element in every row of the wall, uniformly placed.
pub fn cw_hard_coloring<R: Rng>(wall: &CrumblingWalls, rng: &mut R) -> Coloring {
    let n = wall.universe_size();
    let mut greens = ElementSet::empty(n);
    for row in 0..wall.row_count() {
        let elements = wall.row_elements(row);
        greens.insert(elements[rng.gen_range(0..elements.len())]);
    }
    Coloring::from_green_set(&greens)
}

/// Draws a coloring from the worst-case input family `P` of Lemma 4.11: every
/// internal node has exactly two children carrying its value.
pub fn hqs_hard_coloring<R: Rng>(height: usize, rng: &mut R) -> Coloring {
    let n = 3usize.pow(height as u32);
    let mut colors = vec![Color::Green; n];
    fn assign<R: Rng>(colors: &mut [Color], start: usize, height: usize, value: bool, rng: &mut R) {
        if height == 0 {
            colors[start] = if value { Color::Green } else { Color::Red };
            return;
        }
        let third = 3usize.pow(height as u32 - 1);
        // Choose which child carries the minority (opposite) value.
        let minority = rng.gen_range(0..3usize);
        for child in 0..3 {
            let child_value = if child == minority { !value } else { value };
            assign(colors, start + child * third, height - 1, child_value, rng);
        }
    }
    let root_value = rng.gen_bool(0.5);
    assign(&mut colors, 0, height, root_value, rng);
    Coloring::from_colors(colors)
}

/// Builds the `R_Probe_HQS` vs `IR_Probe_HQS` plan on the hard input family
/// of Lemma 4.11 (two cells per height) and returns the executed report
/// cells, interleaved `[plain, improved]` per height.
///
/// These are the slowest cells in the harness and both `table1` and
/// `hqs_randomized` need them, so the (deterministic) result is memoised per
/// `(seed, trials, heights)`.
fn run_hqs_randomized_cells(
    config: &ReproConfig,
    heights: std::ops::RangeInclusive<usize>,
) -> Vec<CellReport> {
    type CacheKey = (u64, usize, usize, usize);
    static CACHE: std::sync::OnceLock<std::sync::Mutex<HashMap<CacheKey, Vec<CellReport>>>> =
        std::sync::OnceLock::new();

    let trials = (config.trials / 5).max(200);
    let base_seed = config.section_seed("hqs-randomized");
    let key = (base_seed, trials, *heights.start(), *heights.end());
    let cache = CACHE.get_or_init(Default::default);
    if let Some(cells) = cache.lock().expect("cache lock").get(&key) {
        return cells.clone();
    }

    let mut plan = EvalPlan::new(base_seed).trials(trials);
    let r_probe = typed_strategy::<Hqs, _>(RProbeHqs::new());
    let ir_probe = typed_strategy::<Hqs, _>(IrProbeHqs::new());
    for height in heights {
        let hqs = spec_system(SystemSpec::Hqs { height });
        // Both strategies share the per-height pair seed, so every trial
        // compares them on the identical hard coloring (variance reduction
        // for the "IR saves" column).
        let pair_seed = base_seed ^ (height as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        plan.probe(&hqs, &r_probe, hqs_hard_source(height, pair_seed));
        plan.probe(&hqs, &ir_probe, hqs_hard_source(height, pair_seed));
    }
    let cells = config.engine().run(&plan).cells;
    cache.lock().expect("cache lock").insert(key, cells.clone());
    cells
}

/// Fits the growth exponents of `R_Probe_HQS` and `IR_Probe_HQS` on the hard
/// input family of Lemma 4.11 (Proposition 4.9 vs Theorem 4.10).
///
/// Returns `(plain_exponent, improved_exponent)`.
pub fn hqs_randomized_exponents(config: &ReproConfig) -> (f64, f64) {
    let cells = run_hqs_randomized_cells(config, 2..=7);
    let plain: Vec<CellReport> = cells.iter().step_by(2).cloned().collect();
    let improved: Vec<CellReport> = cells.iter().skip(1).step_by(2).cloned().collect();
    (fit_cells(&plain).exponent, fit_cells(&improved).exponent)
}

/// Reproduces the worked example of Section 2.3 and Fig. 4: the Maj3 decision
/// tree and the values `PC = 3`, `PC_R = 8/3`, `PPC = 5/2`.
pub fn maj3(config: &ReproConfig) -> (Table, String) {
    let mut rng = config.rng();
    let maj = Majority::new(3).unwrap();
    let mut table = Table::new(["quantity", "measured", "paper value"]);

    let (pc, tree) = exact::optimal_worst_case_tree(&maj).unwrap();
    table.add_row(vec!["PC(Maj3)".into(), pc.to_string(), "3".into()]);

    let ppc = exact::optimal_expected(&maj, 0.5).unwrap();
    table.add_row(vec!["PPC_1/2(Maj3)".into(), fmt(ppc), "2.5".into()]);

    let yao_bound =
        yao::best_deterministic_cost(&maj, &InputDistribution::majority_hard(&maj)).unwrap();
    table.add_row(vec![
        "Yao bound (hard distribution)".into(),
        fmt(yao_bound),
        "8/3 ≈ 2.667".into(),
    ]);

    let worst = config.engine().install(|| {
        estimate_worst_case(&maj, &RProbeMaj::new(), config.trials.max(1_000), &mut rng)
    });
    table.add_row(vec![
        "PC_R(R_Probe_Maj, Maj3) (measured)".into(),
        fmt(worst.expected_probes),
        "8/3 ≈ 2.667".into(),
    ]);

    (table, tree.render_ascii())
}

/// Reproduces the crumbling-walls results: Theorem 3.3 (`≤ 2k − 1` for every p
/// and shape) and Corollary 3.4 (Wheel ≤ 3).
pub fn crumbling_walls(config: &ReproConfig) -> Table {
    let shapes: Vec<(&str, Arc<CrumblingWalls>)> = vec![
        ("Wheel(64)", Arc::new(CrumblingWalls::wheel(64).unwrap())),
        ("Triang(10)", Arc::new(CrumblingWalls::triang(10).unwrap())),
        (
            "CW(1,5,5,5,5)",
            Arc::new(CrumblingWalls::new(vec![1, 5, 5, 5, 5]).unwrap()),
        ),
        (
            "CW(1,2,9,30)",
            Arc::new(CrumblingWalls::new(vec![1, 2, 9, 30]).unwrap()),
        ),
    ];
    let probe_cw = typed_strategy::<CrumblingWalls, _>(ProbeCw::new());
    let mut plan = EvalPlan::new(config.section_seed("crumbling-walls")).trials(config.trials);
    for (_, wall) in &shapes {
        let system: DynSystem = wall.clone();
        for p in [0.1, 0.5, 0.9] {
            plan.probe(&system, &probe_cw, ColoringSource::iid(p));
        }
    }
    let report = config.engine().run(&plan);

    let mut table = Table::new(["wall", "n", "k", "p", "measured", "bound 2k−1"]);
    let mut cells = report.cells.iter();
    for (name, wall) in &shapes {
        for p in [0.1, 0.5, 0.9] {
            let cell = cells.next().expect("one cell per shape × p");
            table.add_row(vec![
                (*name).into(),
                wall.universe_size().to_string(),
                wall.row_count().to_string(),
                p.to_string(),
                fmt(cell.estimate.mean),
                (2 * wall.row_count() - 1).to_string(),
            ]);
        }
    }
    table
}

/// Reproduces Proposition 3.6 / Corollary 3.7: the Tree exponent as a function
/// of `p` compared to `log_2(1 + p)`.
pub fn tree_exponent(config: &ReproConfig) -> Table {
    // Larger trees reduce the finite-size bias of the log–log fit (the paper's
    // exponents are asymptotic).
    let probabilities = [0.1, 0.2, 0.3, 0.4, 0.5];
    let heights = 5..=10usize;
    let probe_tree = typed_strategy::<TreeQuorum, _>(ProbeTree::new());
    let mut plan =
        EvalPlan::new(config.section_seed("tree-exponent")).trials(config.trials.min(3_000));
    for p in probabilities {
        for height in heights.clone() {
            let tree = spec_system(SystemSpec::Tree { height });
            plan.probe(&tree, &probe_tree, ColoringSource::iid(p));
        }
    }
    let report = config.engine().run(&plan);

    let mut table = Table::new(["p", "fitted exponent", "paper exponent log2(1+p)"]);
    let per_sweep = heights.clone().count();
    for (i, p) in probabilities.into_iter().enumerate() {
        let fit = fit_cells(&report.cells[i * per_sweep..(i + 1) * per_sweep]);
        table.add_row(vec![
            p.to_string(),
            fmt(fit.exponent),
            fmt(bounds::tree_probabilistic_exponent(p)),
        ]);
    }
    table
}

/// Reproduces Theorem 3.8: the HQS probabilistic exponent at `p = 1/2`
/// (`log_3 2.5`) versus biased `p` (`log_3 2`), plus the exact `T(h) = 2.5
/// T(h−1)` recursion check on small heights.
pub fn hqs_exponent(config: &ReproConfig) -> Table {
    let mut rng = config.rng();
    let probabilities = [0.1, 0.3, 0.5];
    let heights = 2..=7usize;
    let probe_hqs = typed_strategy::<Hqs, _>(ProbeHqs::new());
    let mut plan =
        EvalPlan::new(config.section_seed("hqs-exponent")).trials(config.trials.min(3_000));
    for p in probabilities {
        for height in heights.clone() {
            let hqs = spec_system(SystemSpec::Hqs { height });
            plan.probe(&hqs, &probe_hqs, ColoringSource::iid(p));
        }
    }
    let report = config.engine().run(&plan);

    let mut table = Table::new(["p", "fitted exponent", "paper exponent"]);
    let per_sweep = heights.clone().count();
    for (i, p) in probabilities.into_iter().enumerate() {
        let fit = fit_cells(&report.cells[i * per_sweep..(i + 1) * per_sweep]);
        let paper = if (p - 0.5f64).abs() < 1e-9 {
            format!(
                "{} (log3 2.5)",
                fmt(bounds::hqs_probabilistic_exponent_symmetric())
            )
        } else {
            format!(
                "≤ {} (log3 2, asymptotic)",
                fmt(bounds::hqs_probabilistic_exponent_biased())
            )
        };
        table.add_row(vec![p.to_string(), fmt(fit.exponent), paper]);
    }
    // Recursion check: the exact expected cost of Probe_HQS at p = 1/2 equals
    // 2.5^h (heights 1 and 2 are small enough for exhaustive enumeration; the
    // larger heights are covered by the Monte-Carlo sweep above).
    for h in 1..=2usize {
        let hqs = Hqs::new(h).unwrap();
        let exact_cost = config
            .engine()
            .install(|| exhaustive_expected_probes(&hqs, &ProbeHqs::new(), 0.5, 1, &mut rng));
        table.add_row(vec![
            format!("T({h}) at p=1/2"),
            fmt(exact_cost),
            format!("2.5^h = {}", fmt(2.5f64.powi(h as i32))),
        ]);
    }
    table
}

/// Reproduces the randomized upper bounds of Section 4: Theorem 4.2 (Maj),
/// Theorem 4.4 / Corollary 4.5 (CW, Triang, Wheel) and Theorem 4.7 (Tree).
pub fn randomized(config: &ReproConfig) -> Table {
    // The worst-case searches go through the legacy estimators, so pin the
    // whole table to the configured engine thread count.
    config.engine().install(|| randomized_inner(config))
}

fn randomized_inner(config: &ReproConfig) -> Table {
    let mut rng = config.rng();
    let trials = config.trials;
    let mut table = Table::new([
        "system",
        "algorithm",
        "measured worst case",
        "paper value / bound",
    ]);

    let maj = Majority::new(9).unwrap();
    let worst = estimate_worst_case(&maj, &RProbeMaj::new(), (trials / 10).max(100), &mut rng);
    table.add_row(vec![
        "Maj(9)".into(),
        "R_Probe_Maj".into(),
        fmt(worst.expected_probes),
        format!(
            "= n − (n−1)/(n+3) = {}",
            fmt(bounds::maj_randomized_exact(9))
        ),
    ]);

    let wheel = CrumblingWalls::wheel(12).unwrap();
    let worst = estimate_worst_case(&wheel, &RProbeCw::new(), (trials / 10).max(100), &mut rng);
    table.add_row(vec![
        "Wheel(12)".into(),
        "R_Probe_CW".into(),
        fmt(worst.expected_probes),
        format!("= n − 1 = {}", fmt(bounds::wheel_randomized(12))),
    ]);

    let triang = CrumblingWalls::triang(5).unwrap();
    let n = triang.universe_size();
    let worst = estimate_worst_case(&triang, &RProbeCw::new(), (trials / 20).max(50), &mut rng);
    table.add_row(vec![
        "Triang(5)".into(),
        "R_Probe_CW".into(),
        fmt(worst.expected_probes),
        format!(
            "≤ max_j{{…}} = {} (Cor 4.5: ≤ {})",
            fmt(bounds::cw_randomized_upper(triang.widths())),
            fmt(bounds::triang_randomized_upper(n, 5))
        ),
    ]);

    let tree = TreeQuorum::new(3).unwrap();
    let hard = InputDistribution::tree_hard(&tree);
    let colorings: Vec<Coloring> = hard.support().iter().map(|(c, _)| c.clone()).collect();
    let worst = worst_case_over_colorings(
        &tree,
        &RProbeTree::new(),
        &colorings,
        (trials / 20).max(50),
        &mut rng,
    );
    table.add_row(vec![
        "Tree(h=3, n=15)".into(),
        "R_Probe_Tree".into(),
        fmt(worst.expected_probes),
        format!("≤ 5n/6 + 1/6 = {}", fmt(bounds::tree_randomized_upper(15))),
    ]);

    table
}

/// Reproduces the Yao lower bounds of Section 4 (Theorems 4.2, 4.6 and 4.8) by
/// computing the exact optimal deterministic cost against the paper's hard
/// distributions on small instances, next to the closed-form values.
pub fn lower_bounds(_config: &ReproConfig) -> Table {
    let mut table = Table::new([
        "system",
        "hard distribution",
        "exact Yao bound",
        "paper formula",
    ]);

    for n in [3usize, 5, 7, 9] {
        let maj = Majority::new(n).unwrap();
        let bound =
            yao::best_deterministic_cost(&maj, &InputDistribution::majority_hard(&maj)).unwrap();
        table.add_row(vec![
            format!("Maj({n})"),
            "exactly (n+1)/2 red".into(),
            fmt(bound),
            format!("n − (n−1)/(n+3) = {}", fmt(bounds::maj_randomized_exact(n))),
        ]);
    }

    for widths in [vec![1usize, 2, 3], vec![1, 3, 4], vec![1, 4, 2, 3]] {
        let wall = CrumblingWalls::new(widths.clone()).unwrap();
        let n = wall.universe_size();
        let k = wall.row_count();
        let bound =
            yao::best_deterministic_cost(&wall, &InputDistribution::cw_hard(&wall)).unwrap();
        table.add_row(vec![
            format!("CW{widths:?}"),
            "one green per row".into(),
            fmt(bound),
            format!("≥ (n+k)/2 = {}", fmt(bounds::cw_randomized_lower(n, k))),
        ]);
    }

    for h in [1usize, 2] {
        let tree = TreeQuorum::new(h).unwrap();
        let n = tree.universe_size();
        let bound =
            yao::best_deterministic_cost(&tree, &InputDistribution::tree_hard(&tree)).unwrap();
        table.add_row(vec![
            format!("Tree(h={h})"),
            "2 red per bottom subtree".into(),
            fmt(bound),
            format!("= 2(n+1)/3 = {}", fmt(bounds::tree_randomized_lower(n))),
        ]);
    }

    table
}

/// Reproduces the HQS randomized-algorithm comparison: `R_Probe_HQS`
/// (Proposition 4.9, exponent `log_3 8/3 ≈ 0.893`) versus `IR_Probe_HQS`
/// (Theorem 4.10, exponent `≈ 0.887`), on the worst-case input family of
/// Lemma 4.11.
pub fn hqs_randomized(config: &ReproConfig) -> Table {
    let cells = run_hqs_randomized_cells(config, 2..=7);
    let mut table = Table::new([
        "height",
        "n",
        "R_Probe_HQS mean",
        "IR_Probe_HQS mean",
        "IR saves",
    ]);
    for (height, pair) in (2..=7usize).zip(cells.chunks_exact(2)) {
        let (plain, improved) = (&pair[0], &pair[1]);
        table.add_row(vec![
            height.to_string(),
            plain.universe_size.unwrap().to_string(),
            fmt(plain.estimate.mean),
            fmt(improved.estimate.mean),
            format!(
                "{:.1}%",
                100.0 * (plain.estimate.mean - improved.estimate.mean) / plain.estimate.mean
            ),
        ]);
    }
    // The exponent fits come from the same memoised cells.
    let (plain_fit, improved_fit) = hqs_randomized_exponents(config);
    table.add_row(vec![
        "exponent".into(),
        "-".into(),
        format!(
            "{} (paper: {})",
            fmt(plain_fit),
            fmt(bounds::hqs_randomized_exponent_plain())
        ),
        format!(
            "{} (paper: {})",
            fmt(improved_fit),
            fmt(bounds::hqs_randomized_exponent_improved())
        ),
        format!(
            "lower bound {}",
            fmt(bounds::hqs_randomized_exponent_lower())
        ),
    ]);
    table
}

/// Reproduces the technical lemmas of Section 2.4 (Lemmas 2.4, 2.8, 2.9)
/// by printing the closed forms next to exact/simulated values.
pub fn lemmas_table(config: &ReproConfig) -> Table {
    // The urn simulations are custom Monte-Carlo cells on the same engine.
    let urn_jth = [(5usize, 5usize, 3usize), (10, 2, 10), (3, 9, 1)];
    let urn_both = [(1usize, 9usize), (4, 4), (7, 2)];
    let mut plan = EvalPlan::new(config.section_seed("lemmas")).trials(config.trials);
    for (r, g, j) in urn_jth {
        plan.custom(
            format!("urn jth-red r={r} g={g} j={j}"),
            config.trials,
            move |_, rng| {
                use rand::seq::SliceRandom;
                let mut order: Vec<bool> = std::iter::repeat_n(true, r)
                    .chain(std::iter::repeat_n(false, g))
                    .collect();
                order.shuffle(rng);
                let mut reds = 0usize;
                for (draw, is_red) in order.iter().enumerate() {
                    if *is_red {
                        reds += 1;
                        if reds == j {
                            return (draw + 1) as f64;
                        }
                    }
                }
                unreachable!("j <= r, so the j-th red is always drawn")
            },
        );
    }
    for (r, g) in urn_both {
        plan.custom(
            format!("urn both-colors r={r} g={g}"),
            config.trials,
            move |_, rng| {
                use rand::seq::SliceRandom;
                let mut order: Vec<bool> = std::iter::repeat_n(true, r)
                    .chain(std::iter::repeat_n(false, g))
                    .collect();
                order.shuffle(rng);
                let first = order[0];
                (order.iter().position(|&c| c != first).unwrap() + 1) as f64
            },
        );
    }
    let report = config.engine().run(&plan);

    let mut table = Table::new(["lemma", "parameters", "formula", "exact / simulated"]);
    for (n, p) in [(50usize, 0.5f64), (50, 0.3), (200, 0.5)] {
        table.add_row(vec![
            "2.4 grid walk".into(),
            format!("N={n}, p={p}"),
            fmt(lemmas::grid_exit_time_asymptotic(n, p)),
            fmt(lemmas::grid_exit_time_exact(n, p)),
        ]);
    }
    for ((r, g, j), cell) in urn_jth.into_iter().zip(&report.cells[0..3]) {
        table.add_row(vec![
            "2.8 urn (j-th red)".into(),
            format!("r={r}, g={g}, j={j}"),
            fmt(lemmas::expected_draws_to_jth_red(r, g, j)),
            fmt(cell.estimate.mean),
        ]);
    }
    for ((r, g), cell) in urn_both.into_iter().zip(&report.cells[3..6]) {
        table.add_row(vec![
            "2.9 urn (both colors)".into(),
            format!("r={r}, g={g}"),
            fmt(lemmas::expected_draws_to_both_colors(r, g)),
            fmt(cell.estimate.mean),
        ]);
    }
    table
}

/// Reproduces the availability facts used throughout the paper (Fact 2.3 and
/// the Tree/HQS availability recursions).
pub fn availability_table(_config: &ReproConfig) -> Table {
    let mut table = Table::new(["system", "p", "F_p (exact)", "check"]);
    let systems: Vec<(&str, Box<dyn QuorumSystem>)> = vec![
        ("Maj(7)", Box::new(Majority::new(7).unwrap())),
        ("Wheel(7)", Box::new(Wheel::new(7).unwrap())),
        ("Triang(3)", Box::new(CrumblingWalls::triang(3).unwrap())),
        ("Tree(h=2)", Box::new(TreeQuorum::new(2).unwrap())),
        ("HQS(h=2)", Box::new(Hqs::new(2).unwrap())),
    ];
    for (name, system) in &systems {
        for p in [0.1, 0.3, 0.5] {
            let fp = exact_failure_probability(system.as_ref(), p).unwrap();
            let fq = exact_failure_probability(system.as_ref(), 1.0 - p).unwrap();
            table.add_row(vec![
                (*name).into(),
                p.to_string(),
                fmt(fp),
                format!(
                    "F_p ≤ p: {}; F_p + F_1−p = {}",
                    fp <= p + 1e-12,
                    fmt(fp + fq)
                ),
            ]);
        }
    }
    // Closed-form recursions vs enumeration.
    let tree = TreeQuorum::new(2).unwrap();
    let hqs = Hqs::new(2).unwrap();
    for p in [0.3, 0.5] {
        table.add_row(vec![
            "Tree recursion".into(),
            p.to_string(),
            fmt(probequorum::analysis::availability::tree_failure_probability(2, p)),
            format!(
                "enumeration {}",
                fmt(exact_failure_probability(&tree, p).unwrap())
            ),
        ]);
        table.add_row(vec![
            "HQS recursion".into(),
            p.to_string(),
            fmt(probequorum::analysis::availability::hqs_failure_probability(2, p)),
            format!(
                "enumeration {}",
                fmt(exact_failure_probability(&hqs, p).unwrap())
            ),
        ]);
    }
    table
}

/// The correlated-failure experiment: probe complexity and availability as
/// the correlation strength sweeps from i.i.d. (`0`) to zone-wholesale
/// (`1`) at a fixed per-element failure marginal of 0.3.
///
/// Every system keeps `n ≤ 24` so the availability column is **exact**
/// (enumeration over all colorings, weighted by the zoned model); the
/// `F_iid` column shows what the paper's independent analysis would predict
/// at the same marginal — the gap is the price of correlation.
pub fn zoned(config: &ReproConfig) -> Table {
    let marginal = 0.3;
    let correlations = [0.0, 0.25, 0.5, 0.75, 1.0];

    struct ZonedSystem {
        system: DynSystem,
        strategy: probequorum::sim::eval::DynProbeStrategy,
    }
    let systems: Vec<ZonedSystem> = vec![
        ZonedSystem {
            system: spec_system(SystemSpec::Majority { n: 15 }),
            strategy: typed_strategy::<Majority, _>(ProbeMaj::new()),
        },
        ZonedSystem {
            system: spec_system(SystemSpec::Triang { rows: 5 }),
            strategy: typed_strategy::<CrumblingWalls, _>(ProbeCw::new()),
        },
        ZonedSystem {
            system: spec_system(SystemSpec::Tree { height: 3 }),
            strategy: typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
        },
        ZonedSystem {
            system: spec_system(SystemSpec::Hqs { height: 2 }),
            strategy: typed_strategy::<Hqs, _>(ProbeHqs::new()),
        },
    ];

    let mut plan = EvalPlan::new(config.section_seed("zoned")).trials(config.trials);
    for entry in &systems {
        let n = entry.system.universe_size();
        let zones = (n / 3).max(2);
        for &c in &correlations {
            plan.probe(
                &entry.system,
                &entry.strategy,
                ColoringSource::zoned_correlated(zones, marginal, c),
            );
        }
    }
    let report = config.engine().run(&plan);

    let mut table = Table::new([
        "system",
        "n",
        "zones",
        "corr",
        "q",
        "p",
        "mean probes",
        "F (exact)",
        "F_iid",
    ]);
    let mut cells = report.cells.iter();
    for entry in &systems {
        let n = entry.system.universe_size();
        let zones = (n / 3).max(2);
        let exact = entry.system.as_quorum_system();
        let f_iid = exact_fp(exact, marginal).unwrap();
        for &c in &correlations {
            let cell = cells.next().expect("one cell per system × correlation");
            let (q, p) = zoned_params(marginal, c);
            let f_zoned = zoned_failure_probability(exact, zones, q, p).unwrap();
            table.add_row(vec![
                entry.system.name(),
                n.to_string(),
                zones.to_string(),
                c.to_string(),
                fmt(q),
                fmt(p),
                fmt(cell.estimate.mean),
                fmt(f_zoned),
                fmt(f_iid),
            ]);
        }
    }
    table
}

/// The churn experiment: time-averaged probe complexity and outage fraction
/// along seeded fail/repair Markov timelines, at two churn intensities with
/// the same stationary red fraction (0.25).
///
/// Probe means are time averages over the trajectory (trial `t` observes
/// step `t`); the outage fraction is the share of steps with no live quorum,
/// measured directly on the same shared timeline.
pub fn churn(config: &ReproConfig) -> Table {
    let systems: Vec<DynSystem> = vec![
        spec_system(SystemSpec::Majority { n: 101 }),
        spec_system(SystemSpec::Triang { rows: 10 }),
        spec_system(SystemSpec::Tree { height: 5 }),
        spec_system(SystemSpec::Hqs { height: 4 }),
    ];
    let strategies: Vec<probequorum::sim::eval::DynProbeStrategy> = vec![
        typed_strategy::<Majority, _>(ProbeMaj::new()),
        typed_strategy::<CrumblingWalls, _>(ProbeCw::new()),
        typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
        typed_strategy::<Hqs, _>(ProbeHqs::new()),
    ];
    // Same stationary fraction, different mixing speed: slow churn leaves
    // failures in place for many steps, fast churn reshuffles them.
    let regimes = [("slow", 0.02, 0.06), ("fast", 0.2, 0.6)];

    let base_seed = config.section_seed("churn");
    // One probe trial per timeline step, so the probe mean and the outage
    // fraction below are measured over exactly the same window.
    let steps = config.trials.clamp(1, 4_096);
    let mut plan = EvalPlan::new(base_seed).trials(config.trials);
    let mut trajectories = Vec::new();
    for (index, (system, strategy)) in systems.iter().zip(&strategies).enumerate() {
        let n = system.universe_size();
        for (regime_index, &(_, fail, repair)) in regimes.iter().enumerate() {
            let seed = base_seed ^ ((index * regimes.len() + regime_index) as u64 + 1);
            let trajectory = Arc::new(ChurnTrajectory::generate(n, fail, repair, steps, seed));
            plan.probe_with_trials(
                system,
                strategy,
                ColoringSource::churn_trajectory(Arc::clone(&trajectory)),
                steps,
            );
            trajectories.push(trajectory);
        }
    }
    let report = config.engine().run(&plan);

    let mut table = Table::new([
        "system",
        "n",
        "regime",
        "fail",
        "repair",
        "stationary red",
        "time-avg probes",
        "outage fraction",
    ]);
    let mut cells = report.cells.iter();
    let mut trajectory_iter = trajectories.iter();
    for system in &systems {
        for &(regime, fail, repair) in &regimes {
            let cell = cells.next().expect("one cell per system × regime");
            let trajectory = trajectory_iter.next().expect("one trajectory per cell");
            let outages = trajectory
                .iter()
                .filter(|coloring| !system.has_green_quorum(coloring))
                .count();
            table.add_row(vec![
                system.name(),
                system.universe_size().to_string(),
                regime.into(),
                fail.to_string(),
                repair.to_string(),
                fmt(trajectory.stationary_red_fraction()),
                fmt(cell.estimate.mean),
                fmt(outages as f64 / trajectory.len() as f64),
            ]);
        }
    }
    table
}

/// The delta engine under churn: incremental re-evaluation via XOR
/// word-mask deltas, validated against from-scratch evaluation and timed
/// against it.
///
/// Returns two tables:
///
/// * the **equivalence table** (`family, n, regime, fail, repair, steps,
///   flips, verdict_changes, outage_frac, agree`) — every step of a churn
///   timeline evaluated both incrementally (the family's [`DeltaEvaluator`])
///   and from scratch, on all six catalogue families under a slow and a fast
///   regime. The `agree` flag is "1" iff every verdict matched; it is a pure
///   function of the seed, goes to stdout and is **enforced** by the CI
///   regression gate (a flip to "0" is a 100 % drop).
/// * the **throughput table** (`family, n, path, steps, wall_ms,
///   steps_per_s, speedup, peak_rss_mib`) — delta-vs-scratch steps/second
///   over a pre-materialized window at steady-state low churn
///   (fail 1/64, repair 1/8), plus a streaming 10⁶-step walk row whose
///   `peak_rss_mib` cell records the process's high-water RSS (an eager
///   10⁶-step trajectory at n ≈ 4096 would need ~500 MiB on its own).
///   Wall-clock data: stderr and the artifact only, informational.
pub fn churn_delta(config: &ReproConfig) -> (Table, Table) {
    churn_delta_over(config, 1_000_000)
}

/// [`churn_delta`] with an explicit streaming-walk horizon (tests shrink it
/// — a million debug-mode steps are too slow for unit tests).
fn churn_delta_over(config: &ReproConfig, walk_steps: usize) -> (Table, Table) {
    use std::hint::black_box;
    use std::time::Instant;

    let base_seed = config.section_seed("churn-delta");
    let families = catalogue();

    // Equivalence: every step checked both ways, all families, two regimes.
    let steps = config.trials.clamp(64, 2_048);
    let regimes = [("slow", 1.0 / 64.0, 1.0 / 8.0), ("fast", 0.2, 0.6)];
    let mut equivalence = Table::new([
        "family",
        "n",
        "regime",
        "fail",
        "repair",
        "steps",
        "flips",
        "verdict_changes",
        "outage_frac",
        "agree",
    ]);
    for (family_index, entry) in families.iter().enumerate() {
        let system = (entry.build)(128);
        let n = system.universe_size();
        for (regime_index, &(regime, fail, repair)) in regimes.iter().enumerate() {
            let seed = base_seed ^ ((family_index * regimes.len() + regime_index) as u64 + 1);
            let trajectory = ChurnTrajectory::generate(n, fail, repair, steps, seed);
            let mut evaluator = delta_evaluator_for(&system);
            let mut walker = trajectory.walk();
            let mut agree = true;
            let mut flips = 0usize;
            let mut verdict_changes = 0usize;
            let mut outages = 0usize;
            let mut previous: Option<bool> = None;
            while let Some((coloring, delta)) = walker.step() {
                let incremental = match previous {
                    None => evaluator.reset(coloring),
                    Some(_) => {
                        flips += delta.flip_count();
                        evaluator.update(coloring, delta)
                    }
                };
                agree &= incremental == system.has_green_quorum(coloring);
                if previous.is_some_and(|p| p != incremental) {
                    verdict_changes += 1;
                }
                if !incremental {
                    outages += 1;
                }
                previous = Some(incremental);
            }
            equivalence.add_row(vec![
                entry.family.into(),
                n.to_string(),
                regime.into(),
                fmt(fail),
                fmt(repair),
                steps.to_string(),
                flips.to_string(),
                verdict_changes.to_string(),
                fmt(outages as f64 / steps as f64),
                if agree { "1" } else { "0" }.into(),
            ]);
        }
    }

    // Throughput: steady-state low-rate churn — per-element rates chosen so
    // a step flips O(1) elements (≈ 2n·fail·repair/(fail+repair) ≈ 2 at
    // n ≈ 4096), the regime a delta engine exists for. The window is
    // materialized outside the timed region so only evaluation is measured.
    let (fail, repair) = (1.0 / 4_096.0, 1.0 / 64.0);
    let window_steps = config.trials.clamp(64, 1_024);
    let repeats = 64usize;
    let mut rates = Table::new([
        "family",
        "n",
        "path",
        "steps",
        "wall_ms",
        "steps_per_s",
        "speedup",
        "peak_rss_mib",
    ]);
    for (family_index, entry) in families.iter().enumerate() {
        let system = (entry.build)(4_096);
        let n = system.universe_size();
        let seed = base_seed ^ 0x5eed ^ (family_index as u64 + 1);
        let trajectory = ChurnTrajectory::generate(n, fail, repair, window_steps, seed);
        let mut window: Vec<(Coloring, ColoringDelta)> = Vec::with_capacity(window_steps);
        let mut walker = trajectory.walk();
        while let Some((coloring, delta)) = walker.step() {
            window.push((coloring.clone(), delta.clone()));
        }

        let mut verdicts = 0usize;
        let started = Instant::now();
        for _ in 0..repeats {
            for (coloring, _) in &window {
                verdicts += usize::from(system.has_green_quorum(black_box(coloring)));
            }
        }
        let scratch_wall = started.elapsed();

        let mut evaluator = delta_evaluator_for(&system);
        let started = Instant::now();
        for _ in 0..repeats {
            let mut primed = false;
            for (coloring, delta) in &window {
                let verdict = if primed {
                    evaluator.update(black_box(coloring), delta)
                } else {
                    primed = true;
                    evaluator.reset(black_box(coloring))
                };
                verdicts += usize::from(verdict);
            }
        }
        let delta_wall = started.elapsed();
        black_box(verdicts);

        let timed_steps = repeats * window_steps;
        let scratch_rate = timed_steps as f64 / scratch_wall.as_secs_f64();
        let delta_rate = timed_steps as f64 / delta_wall.as_secs_f64();
        for (path, wall, rate, speedup) in [
            ("scratch", scratch_wall, scratch_rate, None),
            (
                "delta",
                delta_wall,
                delta_rate,
                Some(delta_rate / scratch_rate),
            ),
        ] {
            rates.add_row(vec![
                entry.family.into(),
                n.to_string(),
                path.into(),
                timed_steps.to_string(),
                format!("{:.2}", wall.as_secs_f64() * 1_000.0),
                format!("{:.0}", rate),
                speedup.map_or_else(|| "-".into(), |s| format!("{s:.1}x")),
                "-".into(),
            ]);
        }
    }

    // The streaming walk: a long horizon at constant memory, delta-evaluated
    // end to end. The trajectory stores only its baseline + one cursor.
    let grid = families
        .iter()
        .find(|entry| entry.family == "Grid")
        .expect("Grid is in the catalogue");
    let system = (grid.build)(4_096);
    let n = system.universe_size();
    let trajectory = ChurnTrajectory::generate(n, fail, repair, walk_steps, base_seed ^ 0xa1c);
    let mut evaluator = delta_evaluator_for(&system);
    let mut walker = trajectory.walk();
    let mut verdicts = 0usize;
    let mut primed = false;
    let started = Instant::now();
    while let Some((coloring, delta)) = walker.step() {
        let verdict = if primed {
            evaluator.update(coloring, delta)
        } else {
            primed = true;
            evaluator.reset(coloring)
        };
        verdicts += usize::from(verdict);
    }
    let walk_wall = started.elapsed();
    black_box(verdicts);
    rates.add_row(vec![
        grid.family.into(),
        n.to_string(),
        "stream-walk".into(),
        walk_steps.to_string(),
        format!("{:.2}", walk_wall.as_secs_f64() * 1_000.0),
        format!("{:.0}", walk_steps as f64 / walk_wall.as_secs_f64()),
        "-".into(),
        peak_rss_bytes().map_or_else(
            || "-".into(),
            |rss| format!("{:.0}", rss as f64 / (1024.0 * 1024.0)),
        ),
    ]);

    (equivalence, rates)
}

/// The full scenario matrix: every registry system × every compatible
/// strategy × every standard failure scenario, one engine pass.
///
/// This is the table the `bench-smoke` CI job captures into
/// `BENCH_<sha>.json` on every push, so the perf and complexity trajectory
/// of the whole registry is recorded over time. Output is bit-identical for
/// any `REPRO_THREADS`.
pub fn scenario_matrix(config: &ReproConfig) -> Table {
    let systems_registry = SystemRegistry::paper();
    let strategies_registry = RegistryBuilder::new().paper().build();
    let scenarios = ScenarioRegistry::standard();

    let systems: Vec<DynSystem> = systems_registry
        .entries()
        .iter()
        .map(|entry| (entry.build)(30))
        .collect();
    let strategies: Vec<probequorum::sim::eval::DynProbeStrategy> = strategies_registry
        .entries()
        .iter()
        .map(|entry| (entry.build)())
        .collect();

    let mut plan =
        EvalPlan::new(config.section_seed("scenario-matrix")).trials(config.trials.min(2_000));
    plan.matrix(&systems, &strategies, &scenarios);
    config.engine().run(&plan).to_table()
}

/// Scalar Monte-Carlo availability of `system` under `model`, plus
/// bit-agreement with `native` on the identical colorings.
fn compose_mc_availability(
    system: &DynQuorumSystem,
    native: Option<&DynQuorumSystem>,
    model: &FailureModel,
    seed: u64,
    trials: usize,
) -> (f64, bool) {
    let n = system.universe_size();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coloring = Coloring::all_green(n);
    let mut green = 0usize;
    let mut agree = true;
    for trial in 0..trials {
        model.sample_into(n, trial as u64, &mut rng, &mut coloring);
        let verdict = system.has_green_quorum(&coloring);
        green += usize::from(verdict);
        if let Some(native) = native {
            agree &= native.has_green_quorum(&coloring) == verdict;
        }
    }
    (green as f64 / trials as f64, agree)
}

/// Checks the word-parallel lane circuit against scalar evaluation on
/// model-sampled lane words: every one of the 64 packed trials per round
/// must produce the same verdict both ways.
fn compose_lane_agreement(
    system: &DynQuorumSystem,
    model: &FailureModel,
    seed: u64,
    rounds: usize,
) -> bool {
    let n = system.universe_size();
    let mut lanes = vec![0u64; n];
    let mut coloring = Coloring::all_green(n);
    let mut agree = true;
    for round in 0..rounds {
        let mut rngs = [StdRng::seed_from_u64(seed ^ (round as u64 + 1))];
        model.sample_green_lanes(n, round as u64, &mut rngs, &mut lanes);
        let word = system
            .green_quorum_lanes(&lanes)
            .expect("compositions implement lane evaluation");
        for lane in 0..64 {
            for (element, bits) in lanes.iter().enumerate() {
                let green = (bits >> lane) & 1 == 1;
                coloring.set_color(element, if green { Color::Green } else { Color::Red });
            }
            agree &= ((word >> lane) & 1 == 1) == system.has_green_quorum(&coloring);
        }
    }
    agree
}

/// Replays a churn trajectory through the composition's delta evaluator,
/// checking every step against from-scratch evaluation.
fn compose_delta_agreement(system: &DynQuorumSystem, seed: u64, steps: usize) -> bool {
    let n = system.universe_size();
    let trajectory = ChurnTrajectory::generate(n, 0.1, 0.3, steps, seed);
    let mut evaluator = delta_evaluator_for(system);
    let mut walker = trajectory.walk();
    let mut agree = true;
    let mut primed = false;
    while let Some((coloring, delta)) = walker.step() {
        let incremental = if primed {
            evaluator.update(coloring, delta)
        } else {
            primed = true;
            evaluator.reset(coloring)
        };
        agree &= incremental == system.has_green_quorum(coloring);
    }
    agree
}

/// The **compose** experiment: recursive threshold compositions behind the
/// [`SystemSpec`] construction API, certified several independent ways.
///
/// The first rows build each shipped composition scenario — Tree, HQS and
/// Grid re-expressed as `Compose` trees plus the 5×5 organization majority —
/// and report, under i.i.d. failures at p = 0.3:
///
/// * exact minimal-quorum / minimal-blocking-set counts from the
///   oracle-driven branch-and-bound of `quorum_analysis::minimal`, with
///   `intersect = 1` certifying every pair of minimal quorums intersects
///   (the composition really is a quorum system);
/// * certified availability bounds `[avail_lo, avail_hi]` from the blocking
///   sets, which must bracket the availability (exact for `n ≤ 24`,
///   Monte-Carlo within noise beyond);
/// * an `agree` flag that ANDs every cross-check the row runs: lane circuit
///   vs scalar evaluation, delta evaluator vs from-scratch churn replay,
///   bit-identical verdicts against the native Tree/HQS/Grid construction
///   on shared colorings, and enumeration-vs-DP quorum sizes.
///
/// The organization-outage sweep rows re-measure the 5×5 organization
/// majority under [`FailureModel::org_zoned_correlated`] at correlations
/// 0, 0.5 and 1: the same per-element marginal, arranged from independent
/// to wholesale-by-operator, with the lane sampler checked against scalar
/// sampling in `agree`. The final row drives the composition through the
/// live cluster runtime and records sim-vs-live agreement.
///
/// Every `agree` is printed `1`/`0` and enforced by the CI regression gate
/// (a flip is a 100 % drop). The whole table is a pure function of
/// `(seed, trials)`.
pub fn compose(config: &ReproConfig) -> Table {
    let base_seed = config.section_seed("compose");
    let trials = config.trials.clamp(64, 2_048);
    let p = 0.3;

    let native_tree: DynQuorumSystem = Arc::new(TreeQuorum::new(3).unwrap());
    let native_hqs: DynQuorumSystem = Arc::new(Hqs::new(2).unwrap());
    let native_grid: DynQuorumSystem = Arc::new(Grid::new(4, 4).unwrap());
    let scenarios: Vec<(&str, SystemSpec, Option<DynQuorumSystem>)> = vec![
        (
            "tree(h=3)",
            SystemSpec::tree_as_compose(3),
            Some(native_tree),
        ),
        ("hqs(h=2)", SystemSpec::hqs_as_compose(2), Some(native_hqs)),
        (
            "grid(4x4)",
            SystemSpec::grid_as_compose(4, 4),
            Some(native_grid),
        ),
        ("org-maj(5x5)", SystemSpec::org_majority(5, 5), None),
    ];

    let mut table = Table::new([
        "spec",
        "n",
        "model",
        "min_q",
        "max_q",
        "quorums",
        "blocking",
        "intersect",
        "avail_lo",
        "avail_hi",
        "mc_avail",
        "agree",
    ]);

    for (index, (name, spec, native)) in scenarios.iter().enumerate() {
        let system = spec.build().expect("shipped composition specs are valid");
        let n = system.universe_size();
        let seed = base_seed ^ (index as u64 + 1);
        let model = FailureModel::iid(p);

        let quorums = minimal_quorums(system.as_ref()).expect("within the enumeration limit");
        let blocking = minimal_blocking_sets(system.as_ref()).expect("within the limit");
        let intersect = find_disjoint_pair(&quorums).is_none();
        let bounds = availability_bounds(&blocking, p);

        let (mc_avail, native_agree) =
            compose_mc_availability(&system, native.as_ref(), &model, seed, trials);
        let lane_agree = compose_lane_agreement(&system, &model, seed ^ 0x1a9e, trials / 64 + 1);
        let delta_agree = compose_delta_agreement(&system, seed ^ 0xde17a, trials.min(512));

        // Enumeration and the size DP must tell the same story.
        let sizes_agree = quorums.iter().map(ElementSet::len).min()
            == Some(system.min_quorum_size())
            && quorums.iter().map(ElementSet::len).max() == Some(system.max_quorum_size());
        // The certified bounds must bracket the availability: exactly when
        // the 2^n sweep is affordable, within Monte-Carlo noise beyond.
        let bounds_hold = if n <= 24 {
            let avail = 1.0 - exact_fp(system.as_ref(), p).expect("n <= 24");
            bounds.lower <= avail + 1e-12 && avail <= bounds.upper + 1e-12
        } else {
            let slack = 4.0 * (0.25 / trials as f64).sqrt();
            bounds.lower - slack <= mc_avail && mc_avail <= bounds.upper + slack
        };
        let agree =
            intersect && native_agree && lane_agree && delta_agree && sizes_agree && bounds_hold;

        table.add_row(vec![
            (*name).into(),
            n.to_string(),
            model.label(),
            system.min_quorum_size().to_string(),
            system.max_quorum_size().to_string(),
            quorums.len().to_string(),
            blocking.len().to_string(),
            if intersect { "1" } else { "0" }.into(),
            fmt(bounds.lower),
            fmt(bounds.upper),
            fmt(mc_avail),
            if agree { "1" } else { "0" }.into(),
        ]);
    }

    // Organization-outage sweep: same marginal, increasing correlation.
    let org_spec = SystemSpec::org_majority(5, 5);
    let org_system = org_spec.build().expect("valid");
    let orgs = Arc::new(
        org_spec
            .organizations()
            .expect("valid spec")
            .expect("org-majority declares organizations"),
    );
    let n = org_system.universe_size();
    for (sweep_index, correlation) in [0.0, 0.5, 1.0].into_iter().enumerate() {
        let model = FailureModel::org_zoned_correlated(Arc::clone(&orgs), p, correlation);
        let seed = base_seed ^ 0x0f6 ^ (sweep_index as u64 + 1);
        let (mc_avail, _) = compose_mc_availability(&org_system, None, &model, seed, trials);
        let lane_agree =
            compose_lane_agreement(&org_system, &model, seed ^ 0x1a9e, trials / 64 + 1);
        table.add_row(vec![
            "org-maj(5x5)".into(),
            n.to_string(),
            model.label(),
            org_system.min_quorum_size().to_string(),
            org_system.max_quorum_size().to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            fmt(mc_avail),
            if lane_agree { "1" } else { "0" }.into(),
        ]);
    }

    // The live runtime probes the composition end to end: one
    // open-Poisson cell on the first network scenario, sim-vs-live.
    let sessions = config.trials.clamp(1, 100);
    let options = LiveOptions::default().time_scale(0.005);
    let workload_config = open_poisson_workload(sessions, SimTime::from_micros(250));
    let scenario = network_scenarios(n, &workload_config)
        .into_iter()
        .next()
        .expect("the scenario battery is non-empty");
    let cell = NetWorkloadCell {
        system: erase_spec(&org_spec).expect("valid spec"),
        strategy: WorkloadStrategy::Paper(universal_strategy(SequentialScan::new())),
        source: ColoringSource::iid(0.05),
        workload: "open-poisson".into(),
        config: workload_config,
        net: scenario.name.to_string(),
        network: scenario.network.clone(),
        policy: scenario.policy,
        health: None,
    };
    let outcome = run_live_cell(base_seed ^ 0x11fe, 0, &cell, &options);
    if !outcome.agreement.agree {
        eprintln!(
            "[compose: live {} diverged:\n{}]",
            scenario.name,
            outcome.agreement.mismatches.join("\n")
        );
    }
    table.add_row(vec![
        "org-maj(5x5)".into(),
        n.to_string(),
        format!("live({})", scenario.name),
        org_system.min_quorum_size().to_string(),
        org_system.max_quorum_size().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        if outcome.agreement.agree { "1" } else { "0" }.into(),
    ]);

    table
}

/// The heavy-traffic **workload** experiment: three system families under
/// {paper strategy, least-loaded, power-of-two} × {open-loop Poisson,
/// closed-loop think-time} arrivals × two failure scenarios, executed on the
/// cluster's discrete-event workload engine.
///
/// Each row reports virtual-time throughput, p50/p95/p99 session latency,
/// mean probes per session and the per-node load-imbalance factor. All
/// numbers are functions of virtual time and the seed — **no wall clock** —
/// so the table is bit-identical for any `REPRO_THREADS` and belongs on
/// stdout alongside the probe-complexity tables.
///
/// Sessions per cell are `REPRO_TRIALS` **capped at 1000** (36 discrete-event
/// simulations per run; quantiles converge long before that). The `sessions`
/// column of every row records the count actually used.
pub fn workload(config: &ReproConfig) -> Table {
    let sessions = config.trials.clamp(1, 1_000);

    let systems: Vec<(DynSystem, probequorum::sim::eval::DynProbeStrategy)> = vec![
        (
            spec_system(SystemSpec::Majority { n: 31 }),
            typed_strategy::<Majority, _>(ProbeMaj::new()),
        ),
        (
            spec_system(SystemSpec::Triang { rows: 8 }),
            typed_strategy::<CrumblingWalls, _>(ProbeCw::new()),
        ),
        (
            spec_system(SystemSpec::Tree { height: 4 }),
            typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
        ),
    ];
    // One independent and one correlated failure regime: load-aware probing
    // must help (or at least not hurt) under both.
    let scenarios = [
        ColoringSource::iid(0.05),
        ColoringSource::zoned_correlated(6, 0.2, 0.75),
    ];
    let workloads = standard_workloads(sessions);

    let mut cells = Vec::new();
    for (system, paper) in &systems {
        for strategy in [
            WorkloadStrategy::Paper(Arc::clone(paper)),
            WorkloadStrategy::LeastLoaded,
            WorkloadStrategy::PowerOfTwo,
        ] {
            for (name, workload_config) in &workloads {
                for source in &scenarios {
                    cells.push(WorkloadCell {
                        system: system.clone(),
                        strategy: strategy.clone(),
                        source: source.clone(),
                        workload: (*name).to_string(),
                        config: *workload_config,
                    });
                }
            }
        }
    }

    let outcomes = run_workload_cells(&config.engine(), config.section_seed("workload"), &cells);
    outcomes_table(&outcomes)
}

/// The **network** experiment: the same heavy-traffic engine as
/// [`workload`], but with a message-level network between client and nodes —
/// probes are request/response pairs routed through loss, heavy-tailed
/// delays and timed partition windows (see
/// [`network_scenarios`]), and clients run session-level robustness
/// policies (bounded retry with backoff, hedged probes).
///
/// Three system families × the six-scenario battery (clean, lossy,
/// heavy-tail, minority partition, flapping partition, asymmetric split);
/// every faulty scenario runs twice — once with the **naive** single-attempt
/// policy and once with the scenario's recommended robust policy — so each
/// row pair shows what retries and hedging buy. The `clean` rows are the
/// control: they are produced by exactly the latency-only engine's code path
/// and match [`workload`]-style cells bit for bit.
///
/// Rows report ok-rate (sessions that located a quorum in their *observed*
/// coloring), virtual-time throughput, p50/p95/p99 session latency, probes,
/// messages and wasted-probe fraction per session. Deterministic: the table
/// is bit-identical for any `REPRO_THREADS`.
pub fn network(config: &ReproConfig) -> Table {
    let sessions = config.trials.clamp(1, 1_000);

    let systems: Vec<(DynSystem, probequorum::sim::eval::DynProbeStrategy)> = vec![
        (
            spec_system(SystemSpec::Majority { n: 31 }),
            typed_strategy::<Majority, _>(ProbeMaj::new()),
        ),
        (
            spec_system(SystemSpec::Triang { rows: 8 }),
            typed_strategy::<CrumblingWalls, _>(ProbeCw::new()),
        ),
        (
            spec_system(SystemSpec::Tree { height: 4 }),
            typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
        ),
    ];
    let workload_config = open_poisson_workload(sessions, SimTime::from_micros(250));

    let mut cells = Vec::new();
    for (system, paper) in &systems {
        let n = system.universe_size();
        for scenario in network_scenarios(n, &workload_config) {
            // The clean scenario's recommended policy *is* the naive one, so
            // it contributes a single control row; every faulty scenario
            // gets a naive/robust pair.
            let mut policies = vec![scenario.policy];
            if !scenario.policy.is_sequential() {
                policies.push(ProbePolicy::sequential());
            }
            for policy in policies {
                cells.push(NetWorkloadCell {
                    system: system.clone(),
                    strategy: WorkloadStrategy::Paper(Arc::clone(paper)),
                    source: ColoringSource::iid(0.05),
                    workload: "open-poisson".into(),
                    config: workload_config,
                    net: scenario.name.to_string(),
                    network: scenario.network.clone(),
                    policy,
                    health: None,
                });
            }
        }
    }

    let outcomes = run_net_workload_cells(&config.engine(), config.section_seed("network"), &cells);
    net_outcomes_table(&outcomes)
}

/// The **live** experiment: a slice of the [`network`] battery replayed on
/// the real-concurrency cluster runtime (`quorum_cluster::live` behind
/// [`Backend::Live`]), cross-validating every logical observable — per-session
/// ok/fail, probe sequences, observed colors, probe/message/waste/timeout
/// counts — against the discrete-event simulator that planned the trace.
///
/// Two system families × the six-scenario battery (clean, lossy, heavy-tail,
/// minority partition, flapping partition, asymmetric split), each under its
/// recommended robust policy. Returns two tables:
///
/// * the **agreement table** (`system, n, strategy, scenario, policy,
///   sessions, agree, ok_rate, probes, msgs, wasted`) — the observables are
///   the simulator's (pure functions of the seed), and `agree` is `1`
///   exactly when the live replay reproduced them all and drained its node
///   queues cleanly; goes to stdout and is enforced by the CI regression
///   gate (an agreement flip is a 100 % drop);
/// * the **throughput table** (`system, n, scenario, policy, sessions,
///   wall_ms, sessions_per_s, p50_ms, p99_ms`) — wall-clock data from the
///   live run, printed to stderr and recorded as the informational
///   `live-throughput` artifact entry (the `throughput` convention).
pub fn live(config: &ReproConfig) -> (Table, Table) {
    // Every admitted session is a real OS thread: bound the trace length so
    // the experiment stays cheap even at full REPRO_TRIALS.
    let sessions = config.trials.clamp(1, 200);
    // Time compressed 200×: arrivals, rpc latencies and timeouts keep their
    // ratios, the wall stays in the milliseconds.
    let options = LiveOptions::default().time_scale(0.005);

    let systems: Vec<(DynSystem, probequorum::sim::eval::DynProbeStrategy)> = vec![
        (
            spec_system(SystemSpec::Majority { n: 15 }),
            typed_strategy::<Majority, _>(ProbeMaj::new()),
        ),
        (
            spec_system(SystemSpec::Tree { height: 3 }),
            typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
        ),
    ];
    let workload_config = open_poisson_workload(sessions, SimTime::from_micros(250));

    let mut agreement = Table::new([
        "system", "n", "strategy", "scenario", "policy", "sessions", "agree", "ok_rate", "probes",
        "msgs", "wasted",
    ]);
    let mut rates = Table::new([
        "system",
        "n",
        "scenario",
        "policy",
        "sessions",
        "wall_ms",
        "sessions_per_s",
        "p50_ms",
        "p99_ms",
    ]);
    let seed = config.section_seed("live");
    let mut index = 0u64;
    for (system, paper) in &systems {
        let n = system.universe_size();
        for scenario in network_scenarios(n, &workload_config) {
            let cell = NetWorkloadCell {
                system: system.clone(),
                strategy: WorkloadStrategy::Paper(Arc::clone(paper)),
                source: ColoringSource::iid(0.05),
                workload: "open-poisson".into(),
                config: workload_config,
                net: scenario.name.to_string(),
                network: scenario.network.clone(),
                policy: scenario.policy,
                health: None,
            };
            let outcome = run_live_cell(seed, index, &cell, &options);
            index += 1;
            if !outcome.agreement.agree {
                // Stdout must stay a pure function of the seed; the details
                // of a divergence go to stderr for the CI transcript.
                eprintln!(
                    "[live: {} × {} diverged:\n{}]",
                    outcome.sim.system,
                    scenario.name,
                    outcome.agreement.mismatches.join("\n")
                );
            }
            let sim = &outcome.sim;
            agreement.add_row(vec![
                sim.system.clone(),
                n.to_string(),
                sim.strategy.clone(),
                sim.net.clone(),
                sim.policy.clone(),
                sim.sessions.to_string(),
                if outcome.agreement.agree { "1" } else { "0" }.into(),
                format!("{:.3}", sim.success_rate),
                format!("{:.2}", sim.probes_per_session),
                format!("{:.2}", sim.messages_per_session),
                format!("{:.3}", sim.wasted_fraction),
            ]);
            let live = &outcome.live;
            rates.add_row(vec![
                sim.system.clone(),
                n.to_string(),
                sim.net.clone(),
                sim.policy.clone(),
                live.admitted.to_string(),
                format!("{:.1}", live.wall.as_secs_f64() * 1_000.0),
                format!("{:.0}", live.sessions_per_sec()),
                format!(
                    "{:.3}",
                    live.wall_latency_quantile(0.50)
                        .unwrap_or_default()
                        .as_secs_f64()
                        * 1_000.0
                ),
                format!(
                    "{:.3}",
                    live.wall_latency_quantile(0.99)
                        .unwrap_or_default()
                        .as_secs_f64()
                        * 1_000.0
                ),
            ]);
        }
    }
    (agreement, rates)
}

/// The **chaos** experiment: the process-failure battery replayed on the
/// real-concurrency cluster runtime. Three system families × the four-chaos
/// battery (crash-minority, rolling-restart, stall-flap, crash+partition
/// compound), each run twice — once with the **naive** client (no health
/// tracking) and once **health-aware** (the per-node EWMA circuit breaker of
/// `quorum_probe::health` sheds probes to open nodes and degrades typed
/// instead of timing out) — so each row pair shows what the breaker buys
/// while nodes crash, restart under supervision and stall.
///
/// Returns two tables:
///
/// * the **agreement table** (`system, n, strategy, scenario, policy,
///   sessions, agree, ok_rate, probes, wasted, degraded, lost, recovered,
///   recov_max_us`) — all observables are the simulator's (pure functions of
///   the seed); `agree` is `1` exactly when the live replay reproduced every
///   logical observable **and** drained its node queues cleanly
///   (`delivered == served + lost_to_crash`); `lost` counts requests
///   delivered into crashed nodes and dropped unserved (identical in both
///   backends); `recovered`/`recov_max_us` summarise
///   [`chaos_recovery_micros`] — how many disrupted nodes the trace saw
///   green again after their last disruption, and the slowest such recovery
///   in virtual microseconds. Goes to stdout and is enforced by the CI
///   regression gate (an agreement flip is a 100 % drop);
/// * the **throughput table** (`system, n, scenario, policy, sessions,
///   wall_ms, sessions_per_s, p50_ms, p99_ms`) — wall-clock data from the
///   live run, printed to stderr and recorded as the informational
///   `chaos-throughput` artifact entry.
pub fn chaos(config: &ReproConfig) -> (Table, Table) {
    // Every admitted session is a real OS thread; same bound as `live`.
    let sessions = config.trials.clamp(1, 200);
    let options = LiveOptions::default().time_scale(0.005);

    let systems: Vec<(DynSystem, probequorum::sim::eval::DynProbeStrategy)> = vec![
        (
            spec_system(SystemSpec::Majority { n: 15 }),
            typed_strategy::<Majority, _>(ProbeMaj::new()),
        ),
        (
            spec_system(SystemSpec::Triang { rows: 5 }),
            typed_strategy::<CrumblingWalls, _>(ProbeCw::new()),
        ),
        (
            spec_system(SystemSpec::Tree { height: 3 }),
            typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
        ),
    ];
    let workload_config = open_poisson_workload(sessions, SimTime::from_micros(250));

    let mut agreement = Table::new([
        "system",
        "n",
        "strategy",
        "scenario",
        "policy",
        "sessions",
        "agree",
        "ok_rate",
        "probes",
        "wasted",
        "degraded",
        "lost",
        "recovered",
        "recov_max_us",
    ]);
    let mut rates = Table::new([
        "system",
        "n",
        "scenario",
        "policy",
        "sessions",
        "wall_ms",
        "sessions_per_s",
        "p50_ms",
        "p99_ms",
    ]);
    let seed = config.section_seed("chaos");
    let mut index = 0u64;
    for (system, paper) in &systems {
        let n = system.universe_size();
        for scenario in chaos_scenarios(n, &workload_config) {
            for health in [None, Some(HealthConfig::default())] {
                let mut cell = NetWorkloadCell {
                    system: system.clone(),
                    strategy: WorkloadStrategy::Paper(Arc::clone(paper)),
                    source: ColoringSource::iid(0.05),
                    workload: "open-poisson".into(),
                    config: workload_config,
                    net: scenario.name.to_string(),
                    network: scenario.network.clone(),
                    policy: scenario.policy,
                    health: None,
                };
                if let Some(breaker) = health {
                    cell = cell.with_health(breaker);
                }
                let outcome = run_live_cell(seed, index, &cell, &options);
                index += 1;
                if !outcome.agreement.agree {
                    // Stdout must stay a pure function of the seed; the
                    // details of a divergence go to stderr.
                    eprintln!(
                        "[chaos: {} × {} diverged:\n{}]",
                        outcome.sim.system,
                        scenario.name,
                        outcome.agreement.mismatches.join("\n")
                    );
                }
                let drained = outcome.live.drained_clean();
                if !drained {
                    eprintln!(
                        "[chaos: {} × {} leaked requests: delivered {} != served {} + lost {}]",
                        outcome.sim.system,
                        scenario.name,
                        outcome.live.requests_delivered,
                        outcome.live.requests_served,
                        outcome.live.requests_lost_to_crash
                    );
                }
                let sim = &outcome.sim;
                // Naive and health-aware rows share the scenario's policy;
                // the suffix keeps the regression-gate key (system, n,
                // strategy, scenario, policy) unique per row.
                let policy_label = if health.is_some() {
                    format!("{}+health", sim.policy)
                } else {
                    sim.policy.clone()
                };
                let recovery = chaos_recovery_micros(&outcome.trace, &cell.network.chaos);
                let recovered = recovery.iter().filter(|(_, at)| at.is_some()).count();
                let recov_max = recovery.iter().filter_map(|(_, at)| *at).max();
                agreement.add_row(vec![
                    sim.system.clone(),
                    n.to_string(),
                    sim.strategy.clone(),
                    sim.net.clone(),
                    policy_label.clone(),
                    sim.sessions.to_string(),
                    if outcome.agreement.agree && drained {
                        "1"
                    } else {
                        "0"
                    }
                    .into(),
                    format!("{:.3}", sim.success_rate),
                    format!("{:.2}", sim.probes_per_session),
                    format!("{:.3}", sim.wasted_fraction),
                    sim.degraded.to_string(),
                    sim.lost_to_crash.to_string(),
                    format!("{recovered}/{}", recovery.len()),
                    recov_max.map_or_else(|| "-".into(), |us| us.to_string()),
                ]);
                let live = &outcome.live;
                rates.add_row(vec![
                    sim.system.clone(),
                    n.to_string(),
                    sim.net.clone(),
                    policy_label,
                    live.admitted.to_string(),
                    format!("{:.1}", live.wall.as_secs_f64() * 1_000.0),
                    format!("{:.0}", live.sessions_per_sec()),
                    format!(
                        "{:.3}",
                        live.wall_latency_quantile(0.50)
                            .unwrap_or_default()
                            .as_secs_f64()
                            * 1_000.0
                    ),
                    format!(
                        "{:.3}",
                        live.wall_latency_quantile(0.99)
                            .unwrap_or_default()
                            .as_secs_f64()
                            * 1_000.0
                    ),
                ]);
            }
        }
    }
    (agreement, rates)
}

/// Measures trials/second through the workspace's hottest paths, for the
/// Grid, Majority and Tree families at universe sizes ≈ {64, 256, 1024}:
///
/// * `probes/engine` — expected-probes estimation through the evaluation
///   engine (one `EvalPlan` cell, iid failures at p = 0.3);
/// * `avail/scalar` — the scalar Monte-Carlo availability estimator (one
///   coloring sampled and checked per trial);
/// * `avail/batched` — the word-parallel batched estimator (64 trials per
///   word pass via `green_quorum_lanes`), with its speedup over the scalar
///   path in the last column.
///
/// Timings are wall-clock and therefore **not** deterministic; the
/// `reproduce` binary prints this table to stderr and records it in the
/// `BENCH_<sha>.json` artifact, keeping stdout a pure function of the seed.
pub fn throughput(config: &ReproConfig) -> Table {
    use std::time::Instant;

    let engine = config.engine();
    let probe_trials = config.trials;
    let scalar_trials = config.trials;
    // The batched path runs whole 64-trial blocks; give it enough work to
    // time meaningfully without slowing small CI runs.
    let batched_trials = config.trials * 16;

    let mut table = Table::new([
        "family",
        "n",
        "path",
        "trials",
        "wall_ms",
        "trials_per_sec",
        "speedup_vs_scalar",
    ]);
    for hint in [64usize, 256, 1024] {
        let entries: Vec<(&str, DynSystem, probequorum::sim::eval::DynProbeStrategy)> = vec![
            (
                "Grid",
                build_spec_family("Grid", hint),
                probequorum::sim::eval::universal_strategy(SequentialScan::new()),
            ),
            (
                "Maj",
                build_spec_family("Maj", hint),
                typed_strategy::<Majority, _>(ProbeMaj::new()),
            ),
            (
                "Tree",
                build_spec_family("Tree", hint),
                typed_strategy::<TreeQuorum, _>(ProbeTree::new()),
            ),
        ];
        for (family, system, strategy) in entries {
            let n = system.universe_size();

            let mut plan = EvalPlan::new(config.section_seed("throughput")).trials(probe_trials);
            plan.probe(&system, &strategy, ColoringSource::iid(0.3));
            let started = Instant::now();
            let report = engine.run(&plan);
            let probes_wall = started.elapsed();
            assert!(report.cells[0].estimate.mean >= 1.0);

            let started = Instant::now();
            let mut rng = config.rng();
            let scalar = probequorum::analysis::availability::monte_carlo_failure_probability(
                system.as_quorum_system(),
                0.3,
                scalar_trials,
                &mut rng,
            )
            .expect("p=0.3 is a valid probability");
            let scalar_wall = started.elapsed();

            let started = Instant::now();
            let batched = probequorum::sim::batched_failure_probability(
                system.as_quorum_system(),
                0.3,
                batched_trials,
                config.section_seed("throughput-batched"),
            );
            let batched_wall = started.elapsed();
            // The two estimators must agree statistically on F_p: allow six
            // binomial standard errors of each at its own trial count.
            let tolerance = 6.0 * (0.25 / scalar_trials as f64).sqrt()
                + 6.0 * (0.25 / batched_trials as f64).sqrt();
            assert!(
                (scalar - batched.mean).abs() < tolerance,
                "{family}(n={n}): scalar F={scalar} vs batched F={}",
                batched.mean
            );

            let scalar_rate = scalar_trials as f64 / scalar_wall.as_secs_f64();
            let batched_rate = batched_trials as f64 / batched_wall.as_secs_f64();
            let rows = [
                ("probes/engine", probe_trials, probes_wall, None),
                ("avail/scalar", scalar_trials, scalar_wall, None),
                (
                    "avail/batched",
                    batched_trials,
                    batched_wall,
                    Some(batched_rate / scalar_rate),
                ),
            ];
            for (path, trials, wall, speedup) in rows {
                table.add_row(vec![
                    family.into(),
                    n.to_string(),
                    path.into(),
                    trials.to_string(),
                    format!("{:.1}", wall.as_secs_f64() * 1_000.0),
                    format!("{:.0}", trials as f64 / wall.as_secs_f64()),
                    speedup.map_or_else(|| "-".into(), |s| format!("{s:.1}x")),
                ]);
            }
        }
    }
    table
}

/// The process's peak resident-set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the proc filesystem is unavailable
/// (non-linux hosts). Best-effort: never panics.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// The million-element systems of the `scale` experiment: the 1000×1000
/// Grid (n = 10⁶), the complete binary tree of height 19 (n = 2²⁰ − 1) and
/// Majority over 10⁶ + 1 elements.
fn scale_systems() -> Vec<(&'static str, DynSystem)> {
    vec![
        (
            "Grid",
            spec_system(SystemSpec::Grid {
                rows: 1_000,
                cols: 1_000,
            }),
        ),
        ("Tree", spec_system(SystemSpec::Tree { height: 19 })),
        ("Maj", spec_system(SystemSpec::Majority { n: 1_000_001 })),
    ]
}

/// Demonstrates the lane engine at **n ≥ 10⁶**: estimates the failure
/// probability of Grid (1000×1000), Tree (height 19, n = 2²⁰ − 1) and Maj
/// (n = 10⁶ + 1) at p ∈ {1/4, 1/2} through
/// `batched_failure_probability_wide` at every supported lane-block width,
/// asserting that all widths return the identical estimate.
///
/// Returns two tables:
///
/// * the **availability table** (`family, n, p, trials, avail, fail_prob,
///   std_err`) — a pure function of the seed, printed to stdout and gated by
///   the CI regression check;
/// * the **throughput table** (`family, n, width, p, trials, wall_ms,
///   lane_trials_per_s`) — wall-clock lane-trials/second (universe size ×
///   trials / wall), printed to stderr and recorded as the informational
///   `scale-throughput` artifact entry.
pub fn scale(config: &ReproConfig) -> (Table, Table) {
    scale_over(config, &scale_systems())
}

/// [`scale`] over an explicit system list (tests substitute small systems —
/// million-element universes are too slow for debug-mode unit tests).
fn scale_over(config: &ReproConfig, systems: &[(&str, DynSystem)]) -> (Table, Table) {
    use std::time::Instant;

    let trials = config.trials;
    let seed = config.section_seed("scale");
    let mut avail = Table::new([
        "family",
        "n",
        "p",
        "trials",
        "avail",
        "fail_prob",
        "std_err",
    ]);
    let mut lanes = Table::new([
        "family",
        "n",
        "width",
        "p",
        "trials",
        "wall_ms",
        "lane_trials_per_s",
    ]);
    for (family, system) in systems {
        let n = system.universe_size();
        // p = 1/4 and 1/2 have one- and two-word binary expansions, so the
        // Bernoulli fill stays cheap even at a million lanes per trial word.
        for p in [0.25, 0.5] {
            let mut reference: Option<(f64, f64)> = None;
            for width in probequorum::core::lanes::LANE_WIDTHS {
                let started = Instant::now();
                let estimate = probequorum::sim::batched_failure_probability_wide(
                    system.as_quorum_system(),
                    p,
                    trials,
                    seed,
                    width,
                );
                let wall = started.elapsed();
                // Every width consumes the same per-trial-word RNG streams,
                // so the estimates must be bit-identical, not merely close.
                match reference {
                    None => reference = Some((estimate.mean, estimate.std_error)),
                    Some(expected) => assert_eq!(
                        expected,
                        (estimate.mean, estimate.std_error),
                        "{family}(n={n}, p={p}): width {width} diverged"
                    ),
                }
                let lane_rate = n as f64 * trials as f64 / wall.as_secs_f64();
                lanes.add_row(vec![
                    (*family).into(),
                    n.to_string(),
                    width.to_string(),
                    format!("{p}"),
                    trials.to_string(),
                    format!("{:.1}", wall.as_secs_f64() * 1_000.0),
                    format!("{lane_rate:.0}"),
                ]);
            }
            let (fail_prob, std_err) = reference.expect("LANE_WIDTHS is non-empty");
            avail.add_row(vec![
                (*family).into(),
                n.to_string(),
                format!("{p}"),
                trials.to_string(),
                format!("{:.6}", 1.0 - fail_prob),
                format!("{fail_prob:.6}"),
                format!("{std_err:.6}"),
            ]);
        }
    }
    (avail, lanes)
}

/// Renders Figures 1–4 of the paper as ASCII art: the Triang system with a
/// shaded quorum, the Tree system with a shaded quorum, the HQS with the
/// quorum of Fig. 3, and the Maj3 decision tree of Fig. 4.
pub fn figures() -> String {
    let mut out = String::new();

    // Figure 1: Triang with rows (1,2,3,4); quorum = full row 2 plus one
    // representative below (elements shown 1-based, shaded with *).
    out.push_str("Figure 1 — the Triang system (rows 1,2,3,4); * marks a quorum\n");
    out.push_str("(full third row plus a representative from the row below):\n\n");
    let triang = CrumblingWalls::triang(4).unwrap();
    let quorum: Vec<usize> = vec![3, 4, 5, 7];
    for row in 0..triang.row_count() {
        let cells: Vec<String> = triang
            .row_elements(row)
            .into_iter()
            .map(|e| {
                if quorum.contains(&e) {
                    format!("[{:>2}*]", e + 1)
                } else {
                    format!("[{:>2} ]", e + 1)
                }
            })
            .collect();
        out.push_str(&format!("  {}\n", cells.join(" ")));
    }
    out.push('\n');

    // Figure 2: the Tree system of height 2 with a root-to-leaf quorum shaded.
    out.push_str("Figure 2 — the Tree system (height 2); * marks the quorum {root, right child, its leaf}:\n\n");
    let tree_quorum = [0usize, 2, 5];
    let label = |v: usize| {
        if tree_quorum.contains(&v) {
            format!("({}*)", v + 1)
        } else {
            format!("({} )", v + 1)
        }
    };
    out.push_str(&format!("            {}\n", label(0)));
    out.push_str("        /        \\\n");
    out.push_str(&format!("     {}        {}\n", label(1), label(2)));
    out.push_str("     /   \\      /   \\\n");
    out.push_str(&format!(
        "  {} {} {} {}\n\n",
        label(3),
        label(4),
        label(5),
        label(6)
    ));

    // Figure 3: HQS of height 2 with the quorum {1,2,5,6} (1-based) shaded.
    out.push_str(
        "Figure 3 — the HQS (height 2, 9 leaves); * marks the quorum {1,2,5,6} of the paper:\n\n",
    );
    let hqs_quorum = [0usize, 1, 4, 5];
    let leaf = |e: usize| {
        if hqs_quorum.contains(&e) {
            format!("{}*", e + 1)
        } else {
            format!("{} ", e + 1)
        }
    };
    out.push_str("                 [2-of-3]\n");
    out.push_str("          /          |          \\\n");
    out.push_str("      [2-of-3]   [2-of-3]   [2-of-3]\n");
    out.push_str("      /  |  \\    /  |  \\    /  |  \\\n");
    out.push_str(&format!(
        "     {} {} {}  {} {} {}  {} {} {}\n\n",
        leaf(0),
        leaf(1),
        leaf(2),
        leaf(3),
        leaf(4),
        leaf(5),
        leaf(6),
        leaf(7),
        leaf(8)
    ));

    // Figure 4: an optimal decision tree for Maj3.
    out.push_str("Figure 4 — an optimal probe decision tree for Maj3 (elements 1-based,\n");
    out.push_str("[+] = green quorum found, [-] = red quorum found):\n\n");
    let maj = Majority::new(3).unwrap();
    let (_, decision_tree) = exact::optimal_worst_case_tree(&maj).unwrap();
    out.push_str(&decision_tree.render_ascii());

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReproConfig {
        ReproConfig {
            trials: 200,
            seed: 7,
            threads: 0,
        }
    }

    #[test]
    fn scale_tables_agree_across_widths_and_record_every_cell() {
        // Small stand-ins for the million-element systems: the cross-width
        // bit-identity assertion inside scale_over is the real check.
        let systems: Vec<(&str, DynSystem)> = vec![
            ("Grid", spec_system(SystemSpec::Grid { rows: 4, cols: 5 })),
            ("Tree", spec_system(SystemSpec::Tree { height: 3 })),
            ("Maj", spec_system(SystemSpec::Majority { n: 13 })),
        ];
        let (avail, lanes) = scale_over(&tiny(), &systems);
        assert_eq!(avail.row_count(), 6, "3 families × 2 probabilities");
        assert_eq!(
            lanes.row_count(),
            6 * probequorum::core::lanes::LANE_WIDTHS.len()
        );
        let text = avail.render();
        for family in ["Grid", "Tree", "Maj"] {
            assert!(text.contains(family), "missing {family} row");
        }
        // Estimates are seeded: a repeat run reproduces the table verbatim.
        let (again, _) = scale_over(&tiny(), &systems);
        assert_eq!(avail.render(), again.render());
    }

    #[test]
    fn churn_delta_agrees_on_every_family_and_reproduces_verbatim() {
        // Short streaming walk: a million debug-mode steps are too slow for
        // a unit test; the equivalence sweep is the real check.
        let (equivalence, rates) = churn_delta_over(&tiny(), 400);
        assert_eq!(equivalence.row_count(), 14, "7 families × 2 regimes");
        for row in equivalence.rows() {
            assert_eq!(row[9], "1", "delta/scratch divergence: {row:?}");
        }
        // 7 families × {scratch, delta} plus the streaming-walk row.
        assert_eq!(rates.row_count(), 15);
        let walk_row = rates.rows().last().unwrap();
        assert_eq!(walk_row[2], "stream-walk");
        assert_eq!(walk_row[3], "400");
        // The equivalence table is a pure function of the seed.
        let (again, _) = churn_delta_over(&tiny(), 400);
        assert_eq!(equivalence.render(), again.render());
    }

    #[test]
    fn chaos_rows_agree_and_reproduce_verbatim() {
        // Small trace: each of the 24 cells replays on the real-thread
        // runtime, so keep the per-cell session count low.
        let config = ReproConfig {
            trials: 48,
            seed: 11,
            threads: 0,
        };
        let (agreement, rates) = chaos(&config);
        assert_eq!(
            agreement.row_count(),
            24,
            "3 families × 4 scenarios × {{naive, health-aware}}"
        );
        assert_eq!(rates.row_count(), 24);
        let text = agreement.render();
        for scenario in [
            "crash-minority",
            "rolling-restart",
            "stall-flap",
            "crash-part",
        ] {
            assert!(text.contains(scenario), "missing {scenario} rows");
        }
        assert!(text.contains("+health"), "health-aware rows carry a suffix");
        for row in agreement.rows() {
            // Column 6 is the agree flag: the live replay reproduced every
            // observable and drained its queues (delivered == served + lost).
            assert_eq!(row[6], "1", "divergent chaos row: {row:?}");
            // Crash scenarios must lose requests and report a recovery time;
            // their rows are what the CI artifact check keys on.
            if row[3] == "crash-minority" {
                assert!(
                    row[11].parse::<u64>().unwrap() > 0,
                    "no lost requests: {row:?}"
                );
                assert_ne!(row[13], "-", "no recovery time: {row:?}");
            }
        }
        // The agreement table is a pure function of the seed: a repeat run
        // (same config, fresh live threads) reproduces it verbatim.
        let (again, _) = chaos(&config);
        assert_eq!(agreement.render(), again.render());
    }

    #[test]
    fn peak_rss_is_positive_where_available() {
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 1024 * 1024, "a test process uses over a MiB");
        }
    }

    #[test]
    fn table1_has_all_rows() {
        let table = table1(&tiny());
        assert_eq!(table.row_count(), 8, "two rows per system, four systems");
        let text = table.render();
        for family in ["Maj", "Triang", "Tree", "HQS"] {
            assert!(text.contains(family), "missing {family} row");
        }
    }

    #[test]
    fn maj3_reproduces_the_worked_example() {
        let (table, art) = maj3(&tiny());
        let text = table.render();
        assert!(text.contains("2.500"));
        assert!(text.contains("2.667") || text.contains("8/3"));
        assert!(art.contains("probe x"));
    }

    #[test]
    fn crumbling_walls_rows_stay_under_bound() {
        let table = crumbling_walls(&tiny());
        assert_eq!(table.row_count(), 12);
    }

    #[test]
    fn lower_bounds_match_formulas() {
        let table = lower_bounds(&tiny());
        let text = table.render();
        // Maj(3) row shows 8/3 on both sides.
        assert!(text.contains("2.667"));
        assert!(table.row_count() >= 9);
    }

    #[test]
    fn hqs_hard_colorings_have_the_recursive_majority_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let coloring = hqs_hard_coloring(2, &mut rng);
            assert_eq!(coloring.universe_size(), 9);
            // Each gate has exactly 2 children of the gate's value, so the
            // number of leaves carrying the root value is exactly 4 or 5
            // (2 majority subtrees × 2 + possibly the minority subtree's
            // minority pair...): concretely the root-color count is between
            // 4 and 5 for height 2.
            let greens = coloring.green_count();
            assert!(
                greens == 4 || greens == 5,
                "unexpected green count {greens}"
            );
        }
    }

    #[test]
    fn figures_render_all_four() {
        let art = figures();
        for marker in [
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "2-of-3", "probe x",
        ] {
            assert!(art.contains(marker), "missing {marker}");
        }
    }

    #[test]
    fn availability_table_is_consistent() {
        let table = availability_table(&tiny());
        assert!(table.render().contains("true"));
        assert!(!table.render().contains("false"));
    }

    #[test]
    fn zoned_experiment_covers_the_sweep() {
        let table = zoned(&tiny());
        assert_eq!(table.row_count(), 20, "four systems × five correlations");
        for row in table.rows() {
            // At correlation 0 the exact zoned availability equals the iid
            // prediction; the columns are (…, corr, q, p, mean, F, F_iid).
            if row[3] == "0" {
                assert_eq!(row[7], row[8], "corr=0 must match the iid prediction");
            }
            let mean: f64 = row[6].parse().unwrap();
            let n: f64 = row[1].parse().unwrap();
            assert!(mean >= 1.0 && mean <= n, "implausible probe mean {mean}");
        }
    }

    #[test]
    fn churn_experiment_reports_outages_and_probes() {
        let table = churn(&tiny());
        assert_eq!(table.row_count(), 8, "four systems × two regimes");
        for row in table.rows() {
            let outage: f64 = row[7].parse().unwrap();
            assert!((0.0..=1.0).contains(&outage), "outage {outage} not a rate");
            let stationary: f64 = row[5].parse().unwrap();
            assert!((stationary - 0.25).abs() < 1e-9, "both regimes sit at 0.25");
        }
    }

    #[test]
    fn scenario_matrix_is_thread_count_invariant() {
        // The acceptance guarantee behind the CI artifact: the matrix table
        // renders bit-identically for 1 and 8 worker threads.
        let single = ReproConfig {
            trials: 60,
            seed: 7,
            threads: 1,
        };
        let parallel = ReproConfig {
            trials: 60,
            seed: 7,
            threads: 8,
        };
        let a = scenario_matrix(&single).render();
        let b = scenario_matrix(&parallel).render();
        assert_eq!(a, b, "scenario matrix diverged across thread counts");
        // Every scenario of the registry appears in the table.
        for scenario in ["iid(p=0.3)", "zoned(", "hetero(", "churn("] {
            assert!(a.contains(scenario), "missing scenario family {scenario}");
        }
    }

    #[test]
    fn workload_covers_the_full_matrix_and_is_thread_invariant() {
        // 3 systems × 3 strategies × 2 arrival models × 2 scenarios.
        let single = ReproConfig {
            trials: 120,
            seed: 7,
            threads: 1,
        };
        let parallel = ReproConfig {
            trials: 120,
            seed: 7,
            threads: 4,
        };
        let a = workload(&single);
        assert_eq!(a.row_count(), 36);
        let text = a.render();
        for marker in [
            "Probe_Maj",
            "Probe_CW",
            "Probe_Tree",
            "LeastLoaded",
            "PowerOfTwo",
            "open-poisson",
            "closed-loop",
            "iid(p=0.05)",
            "zoned(",
        ] {
            assert!(text.contains(marker), "missing {marker}");
        }
        let b = workload(&parallel);
        assert_eq!(a.render(), b.render(), "workload diverged across threads");
        // Latency columns are ordered and throughput is positive in each row:
        // columns are (.., sessions, ok_rate, thr, p50, p95, p99, probes, imb).
        for row in a.rows() {
            let thr: f64 = row[7].parse().unwrap();
            let p50: f64 = row[8].parse().unwrap();
            let p95: f64 = row[9].parse().unwrap();
            let p99: f64 = row[10].parse().unwrap();
            let imbalance: f64 = row[12].parse().unwrap();
            assert!(thr > 0.0, "non-positive throughput in {row:?}");
            assert!(p50 <= p95 && p95 <= p99, "unordered quantiles in {row:?}");
            assert!(imbalance >= 1.0, "impossible imbalance in {row:?}");
        }
    }

    #[test]
    fn network_covers_the_battery_and_is_thread_invariant() {
        // 3 systems × (1 clean control + 5 faulty scenarios × 2 policies).
        let single = ReproConfig {
            trials: 120,
            seed: 7,
            threads: 1,
        };
        let parallel = ReproConfig {
            trials: 120,
            seed: 7,
            threads: 4,
        };
        let a = network(&single);
        assert_eq!(a.row_count(), 33);
        let text = a.render();
        for marker in [
            "clean",
            "lossy",
            "heavy-tail",
            "minority-part",
            "flapping",
            "asym-split",
            "naive",
            "r3/b300us",
            "Probe_Maj",
            "Probe_CW",
            "Probe_Tree",
        ] {
            assert!(text.contains(marker), "missing {marker}");
        }
        let b = network(&parallel);
        assert_eq!(a.render(), b.render(), "network diverged across threads");
        // Columns: (.., sessions, ok_rate, thr, p50, p95, p99, probes, msgs,
        // wasted).
        for row in a.rows() {
            let ok: f64 = row[7].parse().unwrap();
            let thr: f64 = row[8].parse().unwrap();
            let wasted: f64 = row[14].parse().unwrap();
            assert!((0.0..=1.0).contains(&ok), "bad ok-rate in {row:?}");
            assert!(thr > 0.0, "non-positive throughput in {row:?}");
            assert!((0.0..=1.0).contains(&wasted), "bad waste in {row:?}");
            if row[3] == "clean" {
                assert_eq!(row[14], "0.000", "clean rows waste nothing: {row:?}");
            }
        }
    }

    #[test]
    fn live_agrees_with_the_simulator_and_is_reproducible() {
        let config = ReproConfig {
            trials: 60,
            seed: 7,
            threads: 1,
        };
        let (agreement, rates) = live(&config);
        assert_eq!(agreement.row_count(), 12, "2 systems × 6 scenarios");
        assert_eq!(rates.row_count(), 12);
        for row in agreement.rows() {
            assert_eq!(row[6], "1", "live diverged from the simulator: {row:?}");
        }
        let text = agreement.render();
        for marker in [
            "clean",
            "lossy",
            "heavy-tail",
            "minority-part",
            "flapping",
            "asym-split",
            "Probe_Maj",
            "Probe_Tree",
        ] {
            assert!(text.contains(marker), "missing {marker}");
        }
        for row in rates.rows() {
            let rate: f64 = row[6].parse().unwrap();
            assert!(rate > 0.0, "non-positive live throughput in {row:?}");
        }
        // The agreement table carries the sim's observables plus the agree
        // flag: a repeat run (real threads and all) renders identically.
        let (again, _) = live(&config);
        assert_eq!(agreement.render(), again.render());
    }

    #[test]
    fn robust_policies_pay_messages_to_recover_ok_rate() {
        let table = network(&ReproConfig {
            trials: 250,
            seed: 11,
            threads: 0,
        });
        // For each system, on the lossy scenario the robust policy must
        // reach at least the naive policy's ok-rate, strictly improving it
        // somewhere. (Messages per session need not rise: a naive client
        // that mistakes live nodes for dead ones probes *more* elements.)
        let mut strict_improvement = false;
        for system in ["Maj", "CW", "Tree"] {
            let find = |policy: &str| {
                table
                    .rows()
                    .iter()
                    .find(|row| row[0].starts_with(system) && row[3] == "lossy" && row[4] == policy)
                    .unwrap_or_else(|| panic!("missing {system} lossy {policy} row"))
                    .clone()
            };
            let naive = find("naive");
            let robust = find("r3/b300us");
            let naive_ok: f64 = naive[7].parse().unwrap();
            let robust_ok: f64 = robust[7].parse().unwrap();
            assert!(
                robust_ok >= naive_ok,
                "{system}: retries must not lower ok-rate ({robust_ok} vs {naive_ok})"
            );
            strict_improvement |= robust_ok > naive_ok;
        }
        assert!(
            strict_improvement,
            "retries must strictly recover ok-rate on at least one family"
        );
    }

    #[test]
    fn throughput_covers_every_family_size_and_path() {
        let table = throughput(&tiny());
        // 3 families × 3 sizes × 3 paths.
        assert_eq!(table.row_count(), 27);
        let text = table.render();
        for marker in [
            "probes/engine",
            "avail/scalar",
            "avail/batched",
            "Grid",
            "Maj",
            "Tree",
        ] {
            assert!(text.contains(marker), "missing {marker}");
        }
        for row in table.rows() {
            let rate: f64 = row[5].parse().unwrap();
            assert!(rate > 0.0, "non-positive throughput in {row:?}");
        }
    }

    #[test]
    fn config_from_env_defaults() {
        let config = ReproConfig::default();
        assert_eq!(config.trials, 5_000);
        assert_eq!(config.seed, 2_001);
        assert_eq!(config.threads, 0);
    }

    #[test]
    fn tables_are_reproducible_for_a_fixed_seed() {
        // The engine's determinism surfaces all the way up here: rendering a
        // table twice with the same config yields identical text.
        let first = crumbling_walls(&tiny()).render();
        let second = crumbling_walls(&tiny()).render();
        assert_eq!(first, second);
    }
}

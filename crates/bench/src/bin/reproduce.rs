//! Regenerates every table and figure of the paper, plus the extended
//! failure-scenario experiments.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all
//! cargo run --release -p bench --bin reproduce -- table1
//! REPRO_TRIALS=20000 cargo run --release -p bench --bin reproduce -- hqs-randomized
//! REPRO_THREADS=1 cargo run --release -p bench --bin reproduce -- table1   # force single-thread
//! REPRO_JSON=BENCH_abc.json cargo run --release -p bench --bin reproduce -- scenario-matrix
//! ```
//!
//! Available experiments: `table1`, `maj3`, `crumbling-walls`, `tree-exponent`,
//! `hqs-exponent`, `randomized`, `lower-bounds`, `hqs-randomized`, `lemmas`,
//! `availability`, `zoned`, `churn`, `scenario-matrix`, `workload`,
//! `throughput`, `figures`, `all`.
//!
//! `throughput` measures trials/second on the hot paths (engine probes,
//! scalar vs word-parallel batched availability); being wall-clock data its
//! table goes to **stderr** and the JSON artifact, never stdout — `all`
//! excludes it, so stdout stays bit-identical across runs and thread counts.
//!
//! Every experiment reports its wall-clock time and the engine's worker
//! thread count on **stderr**, keeping stdout a pure function of the seed
//! and trial count (bit-identical for any `REPRO_THREADS`). When the
//! `REPRO_JSON` environment variable names a path, a machine-readable
//! artifact (per-experiment wall-clock + full tables) is written there —
//! that is the `BENCH_<sha>.json` file CI uploads on every push.

use std::time::Instant;

use bench::{
    availability_table, churn, crumbling_walls, figures, hqs_exponent, hqs_randomized,
    lemmas_table, lower_bounds, maj3, randomized, scenario_matrix, table1, throughput,
    tree_exponent, workload, zoned, BenchArtifact, ReproConfig,
};
use probequorum::prelude::Table;

/// Runs one experiment, printing its table (and any trailing ASCII art)
/// under a heading and recording the table into the artifact. Timing goes to
/// stderr so stdout stays deterministic.
fn timed(
    config: &ReproConfig,
    artifact: &mut BenchArtifact,
    name: &str,
    heading: &str,
    run: impl FnOnce(&ReproConfig) -> (Table, Option<String>),
) {
    let started = Instant::now();
    println!("== {heading} ==\n");
    let (table, art) = run(config);
    println!("{table}");
    if let Some(art) = art {
        println!("{art}");
    }
    let wall = started.elapsed();
    // REPRO_TRIALS is the knob, not the per-cell count: tables scale it per
    // cell (e.g. `min(3000)` for sweeps, `/5` for the HQS hard family).
    eprintln!(
        "[{name}: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
        wall,
        config.engine().thread_count(),
        config.trials,
        config.seed,
    );
    artifact.record(name, wall, table);
}

/// Adapts a plain-table experiment to `timed`'s `(table, art)` shape.
fn plain(
    run: impl FnOnce(&ReproConfig) -> Table,
) -> impl FnOnce(&ReproConfig) -> (Table, Option<String>) {
    |config| (run(config), None)
}

fn run_figures() {
    println!("{}", figures());
}

fn run_experiment(name: &str, config: &ReproConfig, artifact: &mut BenchArtifact) -> bool {
    match name {
        "table1" => timed(
            config,
            artifact,
            "table1",
            "Table 1: probe complexity of Maj, Triang, Tree and HQS",
            plain(table1),
        ),
        "maj3" => timed(
            config,
            artifact,
            "maj3",
            "Section 2.3 worked example: Maj3",
            |c| {
                let (table, art) = maj3(c);
                (
                    table,
                    Some(format!("Optimal decision tree (Figure 4):\n\n{art}")),
                )
            },
        ),
        "crumbling-walls" => timed(
            config,
            artifact,
            "crumbling-walls",
            "Theorem 3.3 / Corollary 3.4: Probe_CW needs at most 2k−1 expected probes",
            plain(crumbling_walls),
        ),
        "tree-exponent" => timed(
            config,
            artifact,
            "tree-exponent",
            "Proposition 3.6 / Corollary 3.7: Tree exponent log2(1+p)",
            plain(tree_exponent),
        ),
        "hqs-exponent" => timed(
            config,
            artifact,
            "hqs-exponent",
            "Theorem 3.8: HQS probabilistic exponents",
            plain(hqs_exponent),
        ),
        "randomized" => timed(
            config,
            artifact,
            "randomized",
            "Section 4 upper bounds: randomized algorithms",
            plain(randomized),
        ),
        "lower-bounds" => timed(
            config,
            artifact,
            "lower-bounds",
            "Section 4 lower bounds via Yao's principle",
            plain(lower_bounds),
        ),
        "hqs-randomized" => timed(
            config,
            artifact,
            "hqs-randomized",
            "Proposition 4.9 vs Theorem 4.10: R_Probe_HQS vs IR_Probe_HQS",
            plain(hqs_randomized),
        ),
        "lemmas" => timed(
            config,
            artifact,
            "lemmas",
            "Section 2.4 technical lemmas",
            plain(lemmas_table),
        ),
        "availability" => timed(
            config,
            artifact,
            "availability",
            "Fact 2.3 and availability recursions",
            plain(availability_table),
        ),
        "zoned" => timed(
            config,
            artifact,
            "zoned",
            "Correlated zones: probe complexity and availability vs correlation strength",
            plain(zoned),
        ),
        "churn" => timed(
            config,
            artifact,
            "churn",
            "Churn: time-averaged probe complexity along fail/repair timelines",
            plain(churn),
        ),
        "scenario-matrix" => timed(
            config,
            artifact,
            "scenario-matrix",
            "Scenario matrix: every system × strategy × failure scenario",
            plain(scenario_matrix),
        ),
        "workload" => timed(
            config,
            artifact,
            "workload",
            "Workload: concurrent sessions, service queues and load-aware probing",
            plain(workload),
        ),
        "throughput" => {
            let started = Instant::now();
            eprintln!("== Throughput: trials/second on the hot paths ==\n");
            let table = throughput(config);
            eprintln!("{table}");
            let wall = started.elapsed();
            eprintln!(
                "[throughput: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
                wall,
                config.engine().thread_count(),
                config.trials,
                config.seed,
            );
            artifact.record("throughput", wall, table);
        }
        "figures" => run_figures(),
        "all" => {
            for experiment in [
                "maj3",
                "table1",
                "crumbling-walls",
                "tree-exponent",
                "hqs-exponent",
                "randomized",
                "lower-bounds",
                "hqs-randomized",
                "lemmas",
                "availability",
                "zoned",
                "churn",
                "scenario-matrix",
                "workload",
                "figures",
            ] {
                run_experiment(experiment, config, artifact);
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let config = ReproConfig::from_env();
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let requested = if requested.is_empty() {
        vec!["all".to_string()]
    } else {
        requested
    };

    let mut artifact = BenchArtifact::new();
    for experiment in &requested {
        if !run_experiment(experiment, &config, &mut artifact) {
            eprintln!("unknown experiment '{experiment}'");
            eprintln!(
                "available: table1 maj3 crumbling-walls tree-exponent hqs-exponent randomized \
                 lower-bounds hqs-randomized lemmas availability zoned churn scenario-matrix \
                 workload throughput figures all"
            );
            std::process::exit(2);
        }
    }

    if let Ok(path) = std::env::var("REPRO_JSON") {
        let sha = std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".to_string());
        let json = artifact.to_json(
            &sha,
            config.seed,
            config.trials,
            config.engine().thread_count(),
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("[wrote bench artifact: {path}]"),
            Err(error) => {
                eprintln!("failed to write bench artifact {path}: {error}");
                std::process::exit(1);
            }
        }
    }
}

//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all
//! cargo run --release -p bench --bin reproduce -- table1
//! REPRO_TRIALS=20000 cargo run --release -p bench --bin reproduce -- hqs-randomized
//! ```
//!
//! Available experiments: `table1`, `maj3`, `crumbling-walls`, `tree-exponent`,
//! `hqs-exponent`, `randomized`, `lower-bounds`, `hqs-randomized`, `lemmas`,
//! `availability`, `figures`, `all`.

use bench::{
    availability_table, crumbling_walls, figures, hqs_exponent, hqs_randomized, lemmas_table,
    lower_bounds, maj3, randomized, table1, tree_exponent, ReproConfig,
};

fn main() {
    let config = ReproConfig::from_env();
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let requested = if requested.is_empty() { vec!["all".to_string()] } else { requested };

    for experiment in &requested {
        match experiment.as_str() {
            "table1" => {
                println!("== Table 1: probe complexity of Maj, Triang, Tree and HQS ==\n");
                println!("{}", table1(&config));
            }
            "maj3" => {
                let (table, art) = maj3(&config);
                println!("== Section 2.3 worked example: Maj3 ==\n");
                println!("{table}");
                println!("Optimal decision tree (Figure 4):\n\n{art}");
            }
            "crumbling-walls" => {
                println!("== Theorem 3.3 / Corollary 3.4: Probe_CW needs at most 2k−1 expected probes ==\n");
                println!("{}", crumbling_walls(&config));
            }
            "tree-exponent" => {
                println!("== Proposition 3.6 / Corollary 3.7: Tree exponent log2(1+p) ==\n");
                println!("{}", tree_exponent(&config));
            }
            "hqs-exponent" => {
                println!("== Theorem 3.8: HQS probabilistic exponents ==\n");
                println!("{}", hqs_exponent(&config));
            }
            "randomized" => {
                println!("== Section 4 upper bounds: randomized algorithms ==\n");
                println!("{}", randomized(&config));
            }
            "lower-bounds" => {
                println!("== Section 4 lower bounds via Yao's principle ==\n");
                println!("{}", lower_bounds(&config));
            }
            "hqs-randomized" => {
                println!("== Proposition 4.9 vs Theorem 4.10: R_Probe_HQS vs IR_Probe_HQS ==\n");
                println!("{}", hqs_randomized(&config));
            }
            "lemmas" => {
                println!("== Section 2.4 technical lemmas ==\n");
                println!("{}", lemmas_table(&config));
            }
            "availability" => {
                println!("== Fact 2.3 and availability recursions ==\n");
                println!("{}", availability_table(&config));
            }
            "figures" => {
                println!("{}", figures());
            }
            "all" => {
                println!("== Section 2.3 worked example: Maj3 ==\n");
                let (table, art) = maj3(&config);
                println!("{table}");
                println!("Optimal decision tree (Figure 4):\n\n{art}");
                println!("== Table 1: probe complexity of Maj, Triang, Tree and HQS ==\n");
                println!("{}", table1(&config));
                println!("== Theorem 3.3 / Corollary 3.4: crumbling walls ==\n");
                println!("{}", crumbling_walls(&config));
                println!("== Proposition 3.6 / Corollary 3.7: Tree exponent ==\n");
                println!("{}", tree_exponent(&config));
                println!("== Theorem 3.8: HQS exponents ==\n");
                println!("{}", hqs_exponent(&config));
                println!("== Section 4 randomized upper bounds ==\n");
                println!("{}", randomized(&config));
                println!("== Section 4 Yao lower bounds ==\n");
                println!("{}", lower_bounds(&config));
                println!("== R_Probe_HQS vs IR_Probe_HQS ==\n");
                println!("{}", hqs_randomized(&config));
                println!("== Section 2.4 technical lemmas ==\n");
                println!("{}", lemmas_table(&config));
                println!("== Availability (Fact 2.3) ==\n");
                println!("{}", availability_table(&config));
                println!("{}", figures());
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!(
                    "available: table1 maj3 crumbling-walls tree-exponent hqs-exponent randomized \
                     lower-bounds hqs-randomized lemmas availability figures all"
                );
                std::process::exit(2);
            }
        }
    }
}

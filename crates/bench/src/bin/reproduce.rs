//! Regenerates every table and figure of the paper, plus the extended
//! failure-scenario experiments.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all
//! cargo run --release -p bench --bin reproduce -- table1
//! REPRO_TRIALS=20000 cargo run --release -p bench --bin reproduce -- hqs-randomized
//! REPRO_THREADS=1 cargo run --release -p bench --bin reproduce -- table1   # force single-thread
//! REPRO_JSON=BENCH_abc.json cargo run --release -p bench --bin reproduce -- scenario-matrix
//! ```
//!
//! Available experiments: `table1`, `maj3`, `crumbling-walls`, `tree-exponent`,
//! `hqs-exponent`, `randomized`, `lower-bounds`, `hqs-randomized`, `lemmas`,
//! `availability`, `zoned`, `churn`, `churn-delta`, `scenario-matrix`,
//! `compose`, `workload`, `network`, `live`, `chaos`, `scale`, `throughput`,
//! `figures`, `all`.
//! Unknown names
//! are rejected before anything runs, with a non-zero exit — CI cannot
//! silently run nothing.
//!
//! The binary doubles as the CI perf-regression gate:
//!
//! ```text
//! reproduce --check-regression BENCH_<sha>.json crates/bench/baseline.json --tolerance 0.25
//! ```
//!
//! compares the deterministic throughput rows of the two artifacts (failing
//! on a drop beyond the tolerance) and prints a markdown delta table, also
//! appended to `$GITHUB_STEP_SUMMARY` when set.
//!
//! `throughput` measures trials/second on the hot paths (engine probes,
//! scalar vs word-parallel batched availability); being wall-clock data its
//! table goes to **stderr** and the JSON artifact, never stdout — `all`
//! excludes it, so stdout stays bit-identical across runs and thread counts.
//!
//! `scale` demonstrates the lane engine at n ≥ 10⁶ (Grid 1000×1000, Tree of
//! height 19, Maj over 10⁶ + 1 elements). Its availability table is a pure
//! function of the seed and goes to stdout (it IS part of `all`); the
//! lane-trials/second table is wall-clock data and follows the `throughput`
//! convention (stderr + artifact only, as `scale-throughput`).
//!
//! `live` replays a slice of the `network` battery on the real-concurrency
//! cluster runtime and cross-validates every logical observable against the
//! simulator. Its agreement table (sim observables + the `agree` flag) is
//! deterministic and goes to stdout; the wall-clock sessions/second table
//! follows the `throughput` convention (stderr + artifact only, as
//! `live-throughput`).
//!
//! `chaos` does the same for process failure: nodes crash (queues dropped,
//! in-flight requests lost), stall and restart under a supervisor while
//! naive and health-aware (circuit-breaker) clients run the same traces on
//! both backends. The agreement table adds degraded/lost counts and per-node
//! recovery times and goes to stdout; the wall-clock table follows the
//! `throughput` convention (as `chaos-throughput`).
//!
//! Every experiment reports its wall-clock time and the engine's worker
//! thread count on **stderr**, keeping stdout a pure function of the seed
//! and trial count (bit-identical for any `REPRO_THREADS`). When the
//! `REPRO_JSON` environment variable names a path, a machine-readable
//! artifact (per-experiment wall-clock + full tables) is **streamed** there
//! row by row as experiments complete — constant memory, partial progress on
//! disk — closing with the process's peak RSS. That is the `BENCH_<sha>.json`
//! file CI uploads on every push.

use std::fs::File;
use std::io::BufWriter;
use std::time::{Duration, Instant};

use bench::{
    availability_table, chaos, check_regression, churn, churn_delta, compose, crumbling_walls,
    figures, hqs_exponent, hqs_randomized, lemmas_table, live, lower_bounds, maj3, network,
    parse_artifact, peak_rss_bytes, randomized, scale, scenario_matrix, table1, throughput,
    tree_exponent, workload, zoned, ArtifactStream, ReproConfig,
};
use probequorum::prelude::Table;

/// Every experiment the binary can run, in `all` order (`throughput` and the
/// meta-entry `all` are appended for the usage message only: `all` skips
/// `throughput` because its wall-clock table is non-deterministic).
const EXPERIMENTS: &[&str] = &[
    "maj3",
    "table1",
    "crumbling-walls",
    "tree-exponent",
    "hqs-exponent",
    "randomized",
    "lower-bounds",
    "hqs-randomized",
    "lemmas",
    "availability",
    "zoned",
    "churn",
    "churn-delta",
    "scenario-matrix",
    "compose",
    "workload",
    "network",
    "live",
    "chaos",
    "scale",
    "figures",
    "throughput",
    "all",
];

/// The streaming sink behind every experiment: when `REPRO_JSON` names a
/// path, rows go to disk through an [`ArtifactStream`] the moment each
/// experiment completes (constant memory no matter how many rows the
/// million-element `scale` cells produce); otherwise recording is a no-op.
struct Recorder {
    stream: Option<(ArtifactStream<BufWriter<File>>, String)>,
}

impl Recorder {
    /// Opens the artifact stream if `REPRO_JSON` is set; exits non-zero when
    /// the path is set but unwritable (CI must not lose its artifact late).
    fn from_env(config: &ReproConfig) -> Self {
        let Ok(path) = std::env::var("REPRO_JSON") else {
            return Recorder { stream: None };
        };
        let sha = std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".to_string());
        let open = File::create(&path).and_then(|file| {
            ArtifactStream::new(
                BufWriter::new(file),
                &sha,
                config.seed,
                config.trials,
                config.engine().thread_count(),
            )
        });
        match open {
            Ok(stream) => Recorder {
                stream: Some((stream, path)),
            },
            Err(error) => {
                eprintln!("failed to open bench artifact {path}: {error}");
                std::process::exit(1);
            }
        }
    }

    /// Streams one experiment's table into the artifact.
    fn record(&mut self, name: &str, wall: Duration, table: &Table) {
        if let Some((stream, path)) = &mut self.stream {
            if let Err(error) = stream.record_table(name, wall, table) {
                eprintln!("failed to stream bench artifact {path}: {error}");
                std::process::exit(1);
            }
        }
    }

    /// Writes the artifact footer (with the process's peak RSS).
    fn finish(self) {
        if let Some((stream, path)) = self.stream {
            match stream.finish(peak_rss_bytes()) {
                Ok(_) => eprintln!("[wrote bench artifact: {path}]"),
                Err(error) => {
                    eprintln!("failed to finish bench artifact {path}: {error}");
                    std::process::exit(1);
                }
            }
        }
    }
}

/// Runs one experiment, printing its table (and any trailing ASCII art)
/// under a heading and recording the table into the artifact. Timing goes to
/// stderr so stdout stays deterministic.
fn timed(
    config: &ReproConfig,
    artifact: &mut Recorder,
    name: &str,
    heading: &str,
    run: impl FnOnce(&ReproConfig) -> (Table, Option<String>),
) {
    let started = Instant::now();
    println!("== {heading} ==\n");
    let (table, art) = run(config);
    println!("{table}");
    if let Some(art) = art {
        println!("{art}");
    }
    let wall = started.elapsed();
    // REPRO_TRIALS is the knob, not the per-cell count: tables scale it per
    // cell (e.g. `min(3000)` for sweeps, `/5` for the HQS hard family).
    eprintln!(
        "[{name}: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
        wall,
        config.engine().thread_count(),
        config.trials,
        config.seed,
    );
    artifact.record(name, wall, &table);
}

/// Adapts a plain-table experiment to `timed`'s `(table, art)` shape.
fn plain(
    run: impl FnOnce(&ReproConfig) -> Table,
) -> impl FnOnce(&ReproConfig) -> (Table, Option<String>) {
    |config| (run(config), None)
}

fn run_figures() {
    println!("{}", figures());
}

fn run_experiment(name: &str, config: &ReproConfig, artifact: &mut Recorder) -> bool {
    match name {
        "table1" => timed(
            config,
            artifact,
            "table1",
            "Table 1: probe complexity of Maj, Triang, Tree and HQS",
            plain(table1),
        ),
        "maj3" => timed(
            config,
            artifact,
            "maj3",
            "Section 2.3 worked example: Maj3",
            |c| {
                let (table, art) = maj3(c);
                (
                    table,
                    Some(format!("Optimal decision tree (Figure 4):\n\n{art}")),
                )
            },
        ),
        "crumbling-walls" => timed(
            config,
            artifact,
            "crumbling-walls",
            "Theorem 3.3 / Corollary 3.4: Probe_CW needs at most 2k−1 expected probes",
            plain(crumbling_walls),
        ),
        "tree-exponent" => timed(
            config,
            artifact,
            "tree-exponent",
            "Proposition 3.6 / Corollary 3.7: Tree exponent log2(1+p)",
            plain(tree_exponent),
        ),
        "hqs-exponent" => timed(
            config,
            artifact,
            "hqs-exponent",
            "Theorem 3.8: HQS probabilistic exponents",
            plain(hqs_exponent),
        ),
        "randomized" => timed(
            config,
            artifact,
            "randomized",
            "Section 4 upper bounds: randomized algorithms",
            plain(randomized),
        ),
        "lower-bounds" => timed(
            config,
            artifact,
            "lower-bounds",
            "Section 4 lower bounds via Yao's principle",
            plain(lower_bounds),
        ),
        "hqs-randomized" => timed(
            config,
            artifact,
            "hqs-randomized",
            "Proposition 4.9 vs Theorem 4.10: R_Probe_HQS vs IR_Probe_HQS",
            plain(hqs_randomized),
        ),
        "lemmas" => timed(
            config,
            artifact,
            "lemmas",
            "Section 2.4 technical lemmas",
            plain(lemmas_table),
        ),
        "availability" => timed(
            config,
            artifact,
            "availability",
            "Fact 2.3 and availability recursions",
            plain(availability_table),
        ),
        "zoned" => timed(
            config,
            artifact,
            "zoned",
            "Correlated zones: probe complexity and availability vs correlation strength",
            plain(zoned),
        ),
        "churn" => timed(
            config,
            artifact,
            "churn",
            "Churn: time-averaged probe complexity along fail/repair timelines",
            plain(churn),
        ),
        "churn-delta" => {
            let started = Instant::now();
            println!("== Churn delta engine: incremental re-evaluation vs from-scratch, all families ==\n");
            let (equivalence_table, rate_table) = churn_delta(config);
            // Same split as `live`/`scale`: the equivalence table (every
            // step verified both ways, agree flag) is deterministic →
            // stdout; delta-vs-scratch steps/second and the streaming-walk
            // RSS row are wall-clock data → stderr and the artifact only.
            println!("{equivalence_table}");
            let wall = started.elapsed();
            eprintln!("{rate_table}");
            eprintln!(
                "[churn-delta: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
                wall,
                config.engine().thread_count(),
                config.trials,
                config.seed,
            );
            artifact.record("churn-delta", wall, &equivalence_table);
            artifact.record("churn-delta-throughput", wall, &rate_table);
        }
        "scenario-matrix" => timed(
            config,
            artifact,
            "scenario-matrix",
            "Scenario matrix: every system × strategy × failure scenario",
            plain(scenario_matrix),
        ),
        "compose" => timed(
            config,
            artifact,
            "compose",
            "Compose: recursive threshold compositions, certified and cross-checked",
            plain(compose),
        ),
        "workload" => timed(
            config,
            artifact,
            "workload",
            "Workload: concurrent sessions, service queues and load-aware probing",
            plain(workload),
        ),
        "network" => timed(
            config,
            artifact,
            "network",
            "Network faults: loss, heavy tails, partitions, and retrying/hedged probe sessions",
            plain(network),
        ),
        "live" => {
            let started = Instant::now();
            println!("== Live: the real-concurrency runtime replays the simulator's traces, cross-validated ==\n");
            let (agree_table, rate_table) = live(config);
            // The agreement table (the sim's observables plus the agree
            // flag) is deterministic → stdout; the sessions/second table is
            // wall-clock data → stderr and the artifact only (the
            // `throughput` convention).
            println!("{agree_table}");
            let wall = started.elapsed();
            eprintln!("{rate_table}");
            eprintln!(
                "[live: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
                wall,
                config.engine().thread_count(),
                config.trials,
                config.seed,
            );
            artifact.record("live", wall, &agree_table);
            artifact.record("live-throughput", wall, &rate_table);
        }
        "chaos" => {
            let started = Instant::now();
            println!("== Chaos: node crash/stall/restart under supervision, naive vs health-aware clients ==\n");
            let (agree_table, rate_table) = chaos(config);
            // Same split as `live`: the agreement table (sim observables,
            // agree flag, crash-loss ledger, recovery times) is
            // deterministic → stdout; sessions/second is wall-clock data →
            // stderr and the artifact only.
            println!("{agree_table}");
            let wall = started.elapsed();
            eprintln!("{rate_table}");
            eprintln!(
                "[chaos: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
                wall,
                config.engine().thread_count(),
                config.trials,
                config.seed,
            );
            artifact.record("chaos", wall, &agree_table);
            artifact.record("chaos-throughput", wall, &rate_table);
        }
        "throughput" => {
            let started = Instant::now();
            eprintln!("== Throughput: trials/second on the hot paths ==\n");
            let table = throughput(config);
            eprintln!("{table}");
            let wall = started.elapsed();
            eprintln!(
                "[throughput: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
                wall,
                config.engine().thread_count(),
                config.trials,
                config.seed,
            );
            artifact.record("throughput", wall, &table);
        }
        "scale" => {
            let started = Instant::now();
            println!("== Scale: the lane engine at n ≥ 10^6 (Grid 1000×1000, Tree h=19, Maj 10^6+1) ==\n");
            let (avail_table, lane_table) = scale(config);
            // The availability table is a pure function of the seed →
            // stdout; the lane-trials/s table is wall-clock data → stderr
            // and the artifact only (the `throughput` convention).
            println!("{avail_table}");
            let wall = started.elapsed();
            eprintln!("{lane_table}");
            eprintln!(
                "[scale: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]",
                wall,
                config.engine().thread_count(),
                config.trials,
                config.seed,
            );
            if let Some(rss) = peak_rss_bytes() {
                eprintln!(
                    "[scale: peak RSS {:.0} MiB]",
                    rss as f64 / (1024.0 * 1024.0)
                );
            }
            artifact.record("scale", wall, &avail_table);
            artifact.record("scale-throughput", wall, &lane_table);
        }
        "figures" => run_figures(),
        "all" => {
            for experiment in [
                "maj3",
                "table1",
                "crumbling-walls",
                "tree-exponent",
                "hqs-exponent",
                "randomized",
                "lower-bounds",
                "hqs-randomized",
                "lemmas",
                "availability",
                "zoned",
                "churn",
                "churn-delta",
                "scenario-matrix",
                "compose",
                "workload",
                "network",
                "live",
                "chaos",
                "scale",
                "figures",
            ] {
                run_experiment(experiment, config, artifact);
            }
        }
        _ => return false,
    }
    true
}

/// Handles `reproduce --check-regression <current.json> <baseline.json>
/// [--tolerance 0.25]`: prints the markdown delta table (also appended to
/// `$GITHUB_STEP_SUMMARY` when set) and exits non-zero when an enforced
/// throughput row regressed beyond the tolerance.
fn run_regression_check(args: &[String]) -> ! {
    let mut paths = Vec::new();
    let mut tolerance = 0.25f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--tolerance" {
            let value = iter.next().and_then(|v| v.parse().ok());
            match value {
                Some(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => {
                    eprintln!("--tolerance needs a fraction in [0, 1), e.g. 0.25");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        eprintln!(
            "usage: reproduce --check-regression <current.json> <baseline.json> [--tolerance 0.25]"
        );
        std::process::exit(2);
    };
    let load = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => match parse_artifact(&text) {
            Ok(run) => run,
            Err(error) => {
                eprintln!("failed to parse {path}: {error}");
                std::process::exit(2);
            }
        },
        Err(error) => {
            eprintln!("failed to read {path}: {error}");
            std::process::exit(2);
        }
    };
    let current = load(current_path);
    let baseline = load(baseline_path);
    let report = check_regression(&current, &baseline, tolerance);
    println!("{}", report.markdown);
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
        {
            Ok(mut file) => {
                let _ = writeln!(file, "{}", report.markdown);
            }
            Err(error) => eprintln!("could not append to GITHUB_STEP_SUMMARY: {error}"),
        }
    }
    std::process::exit(if report.passed() { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check-regression") {
        run_regression_check(&args[1..]);
    }

    let config = ReproConfig::from_env();
    let requested = if args.is_empty() {
        vec!["all".to_string()]
    } else {
        args
    };

    // Validate every name before running anything: a typo must not let CI
    // silently run a partial (or empty) reproduction and exit 0.
    let unknown: Vec<&String> = requested
        .iter()
        .filter(|name| !EXPERIMENTS.contains(&name.as_str()))
        .collect();
    if !unknown.is_empty() {
        for name in unknown {
            eprintln!("unknown experiment '{name}'");
        }
        eprintln!("available: {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let mut recorder = Recorder::from_env(&config);
    for experiment in &requested {
        let ran = run_experiment(experiment, &config, &mut recorder);
        debug_assert!(ran, "validated names always dispatch");
    }
    recorder.finish();
}

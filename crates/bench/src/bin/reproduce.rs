//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all
//! cargo run --release -p bench --bin reproduce -- table1
//! REPRO_TRIALS=20000 cargo run --release -p bench --bin reproduce -- hqs-randomized
//! REPRO_THREADS=1 cargo run --release -p bench --bin reproduce -- table1   # force single-thread
//! ```
//!
//! Available experiments: `table1`, `maj3`, `crumbling-walls`, `tree-exponent`,
//! `hqs-exponent`, `randomized`, `lower-bounds`, `hqs-randomized`, `lemmas`,
//! `availability`, `figures`, `all`.
//!
//! Every experiment reports its wall-clock time and the engine's worker
//! thread count, so `BENCH_*.json` baselines can be compared run over run.

use std::time::Instant;

use bench::{
    availability_table, crumbling_walls, figures, hqs_exponent, hqs_randomized, lemmas_table,
    lower_bounds, maj3, randomized, table1, tree_exponent, ReproConfig,
};

/// Runs one experiment, printing its output and wall-clock time.
fn timed(config: &ReproConfig, name: &str, run: impl FnOnce(&ReproConfig)) {
    let started = Instant::now();
    run(config);
    // REPRO_TRIALS is the knob, not the per-cell count: tables scale it per
    // cell (e.g. `min(3000)` for sweeps, `/5` for the HQS hard family).
    println!(
        "[{name}: {:.2?} wall, {} engine thread(s), REPRO_TRIALS={}, seed {}]\n",
        started.elapsed(),
        config.engine().thread_count(),
        config.trials,
        config.seed,
    );
}

fn main() {
    let config = ReproConfig::from_env();
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let requested = if requested.is_empty() {
        vec!["all".to_string()]
    } else {
        requested
    };

    for experiment in &requested {
        match experiment.as_str() {
            "table1" => timed(&config, "table1", |c| {
                println!("== Table 1: probe complexity of Maj, Triang, Tree and HQS ==\n");
                println!("{}", table1(c));
            }),
            "maj3" => timed(&config, "maj3", |c| {
                let (table, art) = maj3(c);
                println!("== Section 2.3 worked example: Maj3 ==\n");
                println!("{table}");
                println!("Optimal decision tree (Figure 4):\n\n{art}");
            }),
            "crumbling-walls" => timed(&config, "crumbling-walls", |c| {
                println!("== Theorem 3.3 / Corollary 3.4: Probe_CW needs at most 2k−1 expected probes ==\n");
                println!("{}", crumbling_walls(c));
            }),
            "tree-exponent" => timed(&config, "tree-exponent", |c| {
                println!("== Proposition 3.6 / Corollary 3.7: Tree exponent log2(1+p) ==\n");
                println!("{}", tree_exponent(c));
            }),
            "hqs-exponent" => timed(&config, "hqs-exponent", |c| {
                println!("== Theorem 3.8: HQS probabilistic exponents ==\n");
                println!("{}", hqs_exponent(c));
            }),
            "randomized" => timed(&config, "randomized", |c| {
                println!("== Section 4 upper bounds: randomized algorithms ==\n");
                println!("{}", randomized(c));
            }),
            "lower-bounds" => timed(&config, "lower-bounds", |c| {
                println!("== Section 4 lower bounds via Yao's principle ==\n");
                println!("{}", lower_bounds(c));
            }),
            "hqs-randomized" => timed(&config, "hqs-randomized", |c| {
                println!("== Proposition 4.9 vs Theorem 4.10: R_Probe_HQS vs IR_Probe_HQS ==\n");
                println!("{}", hqs_randomized(c));
            }),
            "lemmas" => timed(&config, "lemmas", |c| {
                println!("== Section 2.4 technical lemmas ==\n");
                println!("{}", lemmas_table(c));
            }),
            "availability" => timed(&config, "availability", |c| {
                println!("== Fact 2.3 and availability recursions ==\n");
                println!("{}", availability_table(c));
            }),
            "figures" => timed(&config, "figures", |_| {
                println!("{}", figures());
            }),
            "all" => {
                timed(&config, "maj3", |c| {
                    println!("== Section 2.3 worked example: Maj3 ==\n");
                    let (table, art) = maj3(c);
                    println!("{table}");
                    println!("Optimal decision tree (Figure 4):\n\n{art}");
                });
                timed(&config, "table1", |c| {
                    println!("== Table 1: probe complexity of Maj, Triang, Tree and HQS ==\n");
                    println!("{}", table1(c));
                });
                timed(&config, "crumbling-walls", |c| {
                    println!("== Theorem 3.3 / Corollary 3.4: crumbling walls ==\n");
                    println!("{}", crumbling_walls(c));
                });
                timed(&config, "tree-exponent", |c| {
                    println!("== Proposition 3.6 / Corollary 3.7: Tree exponent ==\n");
                    println!("{}", tree_exponent(c));
                });
                timed(&config, "hqs-exponent", |c| {
                    println!("== Theorem 3.8: HQS exponents ==\n");
                    println!("{}", hqs_exponent(c));
                });
                timed(&config, "randomized", |c| {
                    println!("== Section 4 randomized upper bounds ==\n");
                    println!("{}", randomized(c));
                });
                timed(&config, "lower-bounds", |c| {
                    println!("== Section 4 Yao lower bounds ==\n");
                    println!("{}", lower_bounds(c));
                });
                timed(&config, "hqs-randomized", |c| {
                    println!("== R_Probe_HQS vs IR_Probe_HQS ==\n");
                    println!("{}", hqs_randomized(c));
                });
                timed(&config, "lemmas", |c| {
                    println!("== Section 2.4 technical lemmas ==\n");
                    println!("{}", lemmas_table(c));
                });
                timed(&config, "availability", |c| {
                    println!("== Availability (Fact 2.3) ==\n");
                    println!("{}", availability_table(c));
                });
                timed(&config, "figures", |_| {
                    println!("{}", figures());
                });
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!(
                    "available: table1 maj3 crumbling-walls tree-exponent hqs-exponent randomized \
                     lower-bounds hqs-randomized lemmas availability figures all"
                );
                std::process::exit(2);
            }
        }
    }
}

//! Criterion micro-benchmarks: cost of evaluating the characteristic function
//! (`contains_quorum`) and of computing availability for every construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

fn random_set(n: usize, seed: u64) -> ElementSet {
    let model = FailureModel::iid(0.5);
    let mut rng = StdRng::seed_from_u64(seed);
    model.sample(n, &mut rng).green_set()
}

fn bench_contains_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("systems/contains_quorum");
    let maj = Majority::new(1001).unwrap();
    let set = random_set(1001, 1);
    group.bench_function(BenchmarkId::new("Maj", 1001), |b| {
        b.iter(|| maj.contains_quorum(&set))
    });

    let wall = CrumblingWalls::triang(45).unwrap(); // 1035 elements
    let set = random_set(wall.universe_size(), 2);
    group.bench_function(BenchmarkId::new("Triang", wall.universe_size()), |b| {
        b.iter(|| wall.contains_quorum(&set))
    });

    let tree = TreeQuorum::new(9).unwrap(); // 1023 elements
    let set = random_set(tree.universe_size(), 3);
    group.bench_function(BenchmarkId::new("Tree", tree.universe_size()), |b| {
        b.iter(|| tree.contains_quorum(&set))
    });

    let hqs = Hqs::new(6).unwrap(); // 729 elements
    let set = random_set(hqs.universe_size(), 4);
    group.bench_function(BenchmarkId::new("HQS", hqs.universe_size()), |b| {
        b.iter(|| hqs.contains_quorum(&set))
    });

    let grid = Grid::new(32, 32).unwrap();
    let set = random_set(1024, 5);
    group.bench_function(BenchmarkId::new("Grid", 1024), |b| {
        b.iter(|| grid.contains_quorum(&set))
    });
    group.finish();
}

fn bench_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("systems/availability");
    for &n in &[11usize, 15, 19] {
        let maj = Majority::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("exact_enumeration", n), &n, |b, _| {
            b.iter(|| exact_failure_probability(&maj, 0.3).unwrap())
        });
    }
    let maj = Majority::new(501).unwrap();
    group.bench_function("monte_carlo_n=501", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            probequorum::analysis::availability::monte_carlo_failure_probability(
                &maj, 0.3, 200, &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("systems/enumerate_quorums");
    let wheel = Wheel::new(1000).unwrap();
    group.bench_function("Wheel(1000)", |b| {
        b.iter(|| wheel.enumerate_quorums().unwrap().len())
    });
    let wall = CrumblingWalls::new(vec![1, 4, 4, 4, 4]).unwrap();
    group.bench_function("CW(1,4,4,4,4)", |b| {
        b.iter(|| wall.enumerate_quorums().unwrap().len())
    });
    let maj = Majority::new(17).unwrap();
    group.bench_function("Maj(17)", |b| {
        b.iter(|| maj.enumerate_quorums().unwrap().len())
    });
    group.finish();
}

fn bench_batched_availability(c: &mut Criterion) {
    // The acceptance hot path: iid availability at n ≈ 1024, scalar
    // one-coloring-per-trial versus 64-trials-per-word-pass lanes.
    let mut group = c.benchmark_group("availability/iid_n1024");
    let systems: Vec<(&str, probequorum::core::DynQuorumSystem)> = vec![
        ("Maj", std::sync::Arc::new(Majority::new(1025).unwrap())),
        ("Tree", std::sync::Arc::new(TreeQuorum::new(9).unwrap())),
        ("Grid", std::sync::Arc::new(Grid::new(32, 32).unwrap())),
    ];
    for (name, system) in &systems {
        group.bench_function(BenchmarkId::new("scalar_200_trials", *name), |b| {
            let mut rng = StdRng::seed_from_u64(17);
            b.iter(|| {
                probequorum::analysis::availability::monte_carlo_failure_probability(
                    system, 0.3, 200, &mut rng,
                )
                .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("batched_200_trials", *name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                probequorum::sim::batched_failure_probability(system, 0.3, 200, seed).mean
            })
        });
    }
    group.finish();
}

fn bench_engine_probes(c: &mut Criterion) {
    // Expected-probes through the chunked engine: one plan cell at n = 1025.
    use probequorum::sim::eval::{erase_system, typed_strategy, ColoringSource, EvalPlan};
    let mut group = c.benchmark_group("engine/expected_probes_n1024");
    let maj = erase_system(Majority::new(1025).unwrap());
    let probe_maj = typed_strategy::<Majority, _>(ProbeMaj::new());
    group.bench_function("Maj_iid0.3_256_trials", |b| {
        let engine = probequorum::sim::EvalEngine::new();
        b.iter(|| {
            let mut plan = EvalPlan::new(3).trials(256);
            plan.probe(&maj, &probe_maj, ColoringSource::iid(0.3));
            engine.run(&plan).cells[0].estimate.mean
        })
    });
    group.finish();
}

fn bench_failure_sampling(c: &mut Criterion) {
    // The engine hot path: allocation-free resampling into one scratch
    // coloring, across every failure-model flavour.
    let mut group = c.benchmark_group("failure/sample_into");
    let n = 1024usize;
    let models = [
        ("iid", FailureModel::iid(0.3)),
        ("exact-reds", FailureModel::exact_red_count(n / 2)),
        (
            "hetero",
            FailureModel::heterogeneous((0..n).map(|e| 0.1 + 0.3 * (e % 2) as f64).collect()),
        ),
        ("zoned", FailureModel::zoned_correlated(32, 0.3, 0.5)),
        ("churn", FailureModel::churn(n, 0.05, 0.15, 256, 1)),
    ];
    for (name, model) in models {
        group.bench_function(BenchmarkId::new(name, n), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut scratch = Coloring::all_green(0);
            let mut trial = 0u64;
            b.iter(|| {
                model.sample_into(n, trial, &mut rng, &mut scratch);
                trial = trial.wrapping_add(1);
                scratch.red_count()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_contains_quorum, bench_availability, bench_batched_availability, bench_engine_probes, bench_enumeration, bench_failure_sampling
}
criterion_main!(benches);

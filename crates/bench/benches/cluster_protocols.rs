//! Criterion micro-benchmarks: end-to-end protocol operations (mutex
//! acquisition, replicated reads/writes) over the simulated cluster, comparing
//! quorum systems whose probe complexity differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probequorum::prelude::*;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

fn bench_mutex(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/mutex_acquire_release");

    let maj = Majority::new(101).unwrap();
    group.bench_function(BenchmarkId::new("Maj", 101), |b| {
        let cluster = Cluster::new(101, NetworkConfig::lan(), 1);
        let mut mutex = QuorumMutex::new(maj.clone(), cluster, ProbeMaj::new());
        b.iter(|| {
            let quorum = mutex.try_acquire(1).unwrap();
            mutex.release(1).unwrap();
            quorum.len()
        })
    });

    let wall = CrumblingWalls::triang(13).unwrap(); // 91 elements
    group.bench_function(BenchmarkId::new("Triang", wall.universe_size()), |b| {
        let cluster = Cluster::new(wall.universe_size(), NetworkConfig::lan(), 2);
        let mut mutex = QuorumMutex::new(wall.clone(), cluster, ProbeCw::new());
        b.iter(|| {
            let quorum = mutex.try_acquire(1).unwrap();
            mutex.release(1).unwrap();
            quorum.len()
        })
    });

    let tree = TreeQuorum::new(6).unwrap(); // 127 elements
    group.bench_function(BenchmarkId::new("Tree", tree.universe_size()), |b| {
        let cluster = Cluster::new(tree.universe_size(), NetworkConfig::lan(), 3);
        let mut mutex = QuorumMutex::new(tree.clone(), cluster, ProbeTree::new());
        b.iter(|| {
            let quorum = mutex.try_acquire(1).unwrap();
            mutex.release(1).unwrap();
            quorum.len()
        })
    });
    group.finish();
}

fn bench_register(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/register_write_read");

    let hqs = Hqs::new(4).unwrap(); // 81 replicas
    group.bench_function(BenchmarkId::new("HQS", 81), |b| {
        let cluster = Cluster::new(81, NetworkConfig::lan(), 4);
        let mut register = ReplicatedRegister::new(hqs.clone(), cluster, ProbeHqs::new());
        b.iter(|| {
            register.write(b"payload".to_vec()).unwrap();
            register.read().unwrap().version
        })
    });

    let maj = Majority::new(81).unwrap();
    group.bench_function(BenchmarkId::new("Maj", 81), |b| {
        let cluster = Cluster::new(81, NetworkConfig::lan(), 5);
        let mut register = ReplicatedRegister::new(maj.clone(), cluster, ProbeMaj::new());
        b.iter(|| {
            register.write(b"payload".to_vec()).unwrap();
            register.read().unwrap().version
        })
    });
    group.finish();
}

fn bench_cluster_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/probe_for_quorum");
    let wall = CrumblingWalls::triang(20).unwrap(); // 210 elements
    group.bench_function("Triang(20)_with_30pct_failures", |b| {
        let mut cluster = Cluster::new(wall.universe_size(), NetworkConfig::lan(), 6);
        cluster.inject_iid_failures(0.3);
        b.iter(|| cluster.probe_for_quorum(&wall, &ProbeCw::new()).probes)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_mutex, bench_register, bench_cluster_probe
}
criterion_main!(benches);

//! Criterion micro-benchmarks: wall-clock cost of every probing strategy on
//! every family, at p = 1/2, for growing universe sizes.
//!
//! These complement the probe-count reproduction (`reproduce` binary) by
//! answering the systems question a library user cares about: how much CPU
//! does locating a live quorum actually take?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

fn bench_majority(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe/maj");
    for &n in &[101usize, 401, 1001] {
        let maj = Majority::new(n).unwrap();
        let model = FailureModel::iid(0.5);
        group.bench_with_input(BenchmarkId::new("Probe_Maj", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&maj, &ProbeMaj::new(), &coloring, &mut rng).probes
            })
        });
        group.bench_with_input(BenchmarkId::new("R_Probe_Maj", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&maj, &RProbeMaj::new(), &coloring, &mut rng).probes
            })
        });
    }
    group.finish();
}

fn bench_crumbling_walls(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe/cw");
    for &rows in &[10usize, 20, 40] {
        let wall = CrumblingWalls::triang(rows).unwrap();
        let n = wall.universe_size();
        let model = FailureModel::iid(0.5);
        group.bench_with_input(BenchmarkId::new("Probe_CW", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&wall, &ProbeCw::new(), &coloring, &mut rng).probes
            })
        });
        group.bench_with_input(BenchmarkId::new("R_Probe_CW", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&wall, &RProbeCw::new(), &coloring, &mut rng).probes
            })
        });
    }
    group.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe/tree");
    for &height in &[6usize, 8, 10] {
        let tree = TreeQuorum::new(height).unwrap();
        let n = tree.universe_size();
        let model = FailureModel::iid(0.5);
        group.bench_with_input(BenchmarkId::new("Probe_Tree", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&tree, &ProbeTree::new(), &coloring, &mut rng).probes
            })
        });
        group.bench_with_input(BenchmarkId::new("R_Probe_Tree", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&tree, &RProbeTree::new(), &coloring, &mut rng).probes
            })
        });
    }
    group.finish();
}

fn bench_hqs(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe/hqs");
    for &height in &[4usize, 5, 6] {
        let hqs = Hqs::new(height).unwrap();
        let n = hqs.universe_size();
        let model = FailureModel::iid(0.5);
        group.bench_with_input(BenchmarkId::new("Probe_HQS", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&hqs, &ProbeHqs::new(), &coloring, &mut rng).probes
            })
        });
        group.bench_with_input(BenchmarkId::new("R_Probe_HQS", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&hqs, &RProbeHqs::new(), &coloring, &mut rng).probes
            })
        });
        group.bench_with_input(BenchmarkId::new("IR_Probe_HQS", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let coloring = model.sample(n, &mut rng);
                run_strategy(&hqs, &IrProbeHqs::new(), &coloring, &mut rng).probes
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_majority, bench_crumbling_walls, bench_tree, bench_hqs
}
criterion_main!(benches);

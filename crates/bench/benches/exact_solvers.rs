//! Criterion micro-benchmarks: the exponential-time exact solvers (optimal
//! `PC`, optimal `PPC_p`, Yao lower bounds) on small instances — these bound
//! how far the exact machinery scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probequorum::prelude::*;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1000))
}

fn bench_exact_expected(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/optimal_expected");
    for &n in &[7usize, 9, 11] {
        let maj = Majority::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("Maj", n), &n, |b, _| {
            b.iter(|| exact::optimal_expected(&maj, 0.5).unwrap())
        });
    }
    let hqs = Hqs::new(2).unwrap();
    group.bench_function("HQS(h=2)", |b| {
        b.iter(|| exact::optimal_expected(&hqs, 0.5).unwrap())
    });
    let tree = TreeQuorum::new(2).unwrap();
    group.bench_function("Tree(h=2)", |b| {
        b.iter(|| exact::optimal_expected(&tree, 0.5).unwrap())
    });
    group.finish();
}

fn bench_exact_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/optimal_worst_case");
    for &n in &[7usize, 9, 11] {
        let maj = Majority::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("Maj", n), &n, |b, _| {
            b.iter(|| exact::optimal_worst_case(&maj).unwrap())
        });
    }
    let wall = CrumblingWalls::new(vec![1, 3, 4]).unwrap();
    group.bench_function("CW(1,3,4)", |b| {
        b.iter(|| exact::optimal_worst_case(&wall).unwrap())
    });
    group.finish();
}

fn bench_yao(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/yao_lower_bound");
    for &n in &[5usize, 7, 9] {
        let maj = Majority::new(n).unwrap();
        let d = InputDistribution::majority_hard(&maj);
        group.bench_with_input(BenchmarkId::new("Maj", n), &n, |b, _| {
            b.iter(|| yao::best_deterministic_cost(&maj, &d).unwrap())
        });
    }
    let tree = TreeQuorum::new(2).unwrap();
    let d = InputDistribution::tree_hard(&tree);
    group.bench_function("Tree(h=2)", |b| {
        b.iter(|| yao::best_deterministic_cost(&tree, &d).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_exact_expected, bench_exact_worst_case, bench_yao
}
criterion_main!(benches);

//! Criterion benchmarks for the multi-word lane engine: lane-trials/second
//! of `batched_failure_probability_wide` at universe sizes 1k / 64k / 1M and
//! every supported lane-block width, plus the raw Bernoulli lane fill.
//!
//! The interesting reads are the width sweeps at fixed n (how much a wider
//! block buys per pass) and the n sweep at fixed width (how throughput holds
//! up as the universe outgrows cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probequorum::core::lanes::{bernoulli_lane_words, LANE_WIDTHS};
use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

/// Grid, Tree and Maj at roughly the requested universe size (Grid is a
/// square, Tree a complete binary tree, Maj exact odd).
fn families(hint: usize) -> Vec<(&'static str, usize, probequorum::core::DynQuorumSystem)> {
    let side = (hint as f64).sqrt().round() as usize;
    let height = (hint as f64).log2().ceil() as usize;
    vec![
        (
            "Grid",
            side * side,
            Arc::new(Grid::new(side, side).unwrap()) as probequorum::core::DynQuorumSystem,
        ),
        (
            "Tree",
            (1 << (height + 1)) - 1,
            Arc::new(TreeQuorum::new(height).unwrap()),
        ),
        ("Maj", hint | 1, Arc::new(Majority::new(hint | 1).unwrap())),
    ]
}

/// Width sweep: 256 trials through the wide estimator at every supported
/// lane-block width. Per-iteration work is n × 256 lane-trials; divide to
/// get lane-trials/second.
fn bench_wide_estimator(c: &mut Criterion) {
    for (label, hint, trials) in [("1k", 1_024usize, 1_024usize), ("64k", 65_536, 256)] {
        let mut group = c.benchmark_group(format!("scale/wide_estimator_n{label}"));
        for (family, _, system) in families(hint) {
            for width in LANE_WIDTHS {
                let name = format!("{family}_w{width}");
                group.bench_function(BenchmarkId::new(name, trials), |b| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed = seed.wrapping_add(1);
                        probequorum::sim::batched_failure_probability_wide(
                            &system, 0.25, trials, seed, width,
                        )
                        .mean
                    })
                });
            }
        }
        group.finish();
    }
}

/// One million elements: a single 64-trial word versus a full-width block
/// through the Grid evaluator. Kept to two cases so the group stays fast.
fn bench_million_elements(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale/wide_estimator_n1M");
    let grid: probequorum::core::DynQuorumSystem = Arc::new(Grid::new(1_000, 1_000).unwrap());
    for width in [1usize, 8] {
        let trials = 64 * width; // exactly one superblock per iteration
        group.bench_function(BenchmarkId::new(format!("Grid_w{width}"), trials), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                probequorum::sim::batched_failure_probability_wide(&grid, 0.25, trials, seed, width)
                    .mean
            })
        });
    }
    group.finish();
}

/// The raw Bernoulli lane fill feeding the estimators, per block width.
fn bench_lane_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale/bernoulli_fill_n64k");
    let n = 65_536usize;
    for width in LANE_WIDTHS {
        group.bench_function(BenchmarkId::from_parameter(width), |b| {
            let mut rngs: Vec<StdRng> = (0..width)
                .map(|i| StdRng::seed_from_u64(i as u64))
                .collect();
            let mut out = vec![0u64; n * width];
            b.iter(|| {
                for slot in out.chunks_mut(width) {
                    bernoulli_lane_words(0.25, slot, |i| rngs[i].next_u64());
                }
                out[0]
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_wide_estimator, bench_million_elements, bench_lane_fill
}
criterion_main!(benches);

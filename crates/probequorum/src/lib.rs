//! # probequorum
//!
//! Facade crate for the *Average Probe Complexity in Quorum Systems*
//! reproduction (Hassin & Peleg, PODC 2001 / JCSS 2006).
//!
//! It re-exports the workspace crates under stable module names so that
//! applications, the examples and the benchmark harness can depend on a single
//! crate:
//!
//! * [`core`] — universes, element sets, colorings, witnesses, coteries and
//!   the [`core::QuorumSystem`] trait (`quorum-core`);
//! * [`systems`] — Majority, Wheel, Crumbling Walls / Triang, Tree, HQS and
//!   Grid constructions (`quorum-systems`);
//! * [`probe`] — probe oracles, the paper's probing algorithms, decision
//!   trees, exact solvers and Yao lower bounds (`quorum-probe`);
//! * [`analysis`] — availability, the technical lemmas, statistics, power-law
//!   fitting and the paper's closed-form bounds (`quorum-analysis`);
//! * [`sim`] — the parallel registry-driven evaluation engine
//!   ([`sim::eval`]), Monte-Carlo estimators, failure models, sweeps and
//!   report tables (`quorum-sim`);
//! * [`cluster`] — the discrete-event cluster simulator (`quorum-cluster`);
//! * [`protocols`] — quorum-based mutual exclusion and the replicated
//!   register (`quorum-protocols`).
//!
//! # Quickstart
//!
//! ```
//! use probequorum::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Build the Triang system from the paper's Fig. 1 and estimate the
//! // expected number of probes needed to find a live quorum at p = 1/2.
//! let triang = CrumblingWalls::triang(6)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let estimate = estimate_expected_probes(
//!     &triang,
//!     &ProbeCw::new(),
//!     &FailureModel::iid(0.5),
//!     2_000,
//!     &mut rng,
//! );
//! // Theorem 3.3: at most 2k − 1 = 11 expected probes for the 6-row wall,
//! // even though the wall has 21 elements.
//! assert!(estimate.mean <= 11.0 + 4.0 * estimate.std_error);
//! # Ok::<(), probequorum::core::QuorumError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use quorum_analysis as analysis;
pub use quorum_cluster as cluster;
pub use quorum_core as core;
pub use quorum_probe as probe;
pub use quorum_protocols as protocols;
pub use quorum_sim as sim;
pub use quorum_systems as systems;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use quorum_analysis::{
        availability::exact_failure_probability, availability_bounds, bounds, find_disjoint_pair,
        fit_power_law, lemmas, load_imbalance, minimal_blocking_sets, minimal_quorums,
        AvailabilityBounds, LogHistogram, PowerLawFit, RunningStats,
    };
    pub use quorum_cluster::{
        cross_validate, plan_observables, AgreementReport, ArrivalProcess, Backend, ChaosKind,
        ChaosSchedule, ChaosState, ChaosWindow, Cluster, Distribution, LinkDirection, LiveOptions,
        LiveReport, LoadLedger, NetProbe, NetSessionPlan, NetworkConfig, NetworkModel,
        PartitionKind, PartitionSchedule, PartitionWindow, PlanCost, ProbePolicy, SessionPlan,
        SessionTrace, SimTime, SpecReport, SupervisorPolicy, WorkloadConfig, WorkloadReport,
        WorkloadSpec,
    };
    #[allow(deprecated)]
    pub use quorum_cluster::{run_net_workload, run_workload};
    pub use quorum_core::{
        delta_evaluator_for, Color, Coloring, ColoringDelta, Coterie, DeltaEvaluator,
        DynQuorumSystem, ElementId, ElementSet, Organizations, QuorumError, QuorumSystem,
        RescanDeltaEvaluator, Witness, WitnessKind,
    };
    pub use quorum_probe::{
        exact, run_strategy, strategies::*, yao, BreakerState, DecisionTree, GatedOutcome,
        HealthConfig, HealthView, InputDistribution, ProbeOracle, ProbeRun, ProbeStrategy,
    };
    pub use quorum_protocols::{
        MutexError, QuorumMutex, ReadResult, RegisterError, ReplicatedRegister,
    };
    pub use quorum_sim::eval::{
        erase_spec, erase_system, typed_strategy, universal_strategy, ColoringSource,
        DynProbeStrategy, DynStrategy, DynSystem, EvalEngine, EvalPlan, EvalReport,
        RegistryBuilder, ScenarioRegistry, StrategyRegistry, SystemRegistry, TrialRng,
    };
    pub use quorum_sim::{
        batched_availability, batched_failure_probability, chaos_recovery_micros, chaos_scenarios,
        closed_loop_workload, estimate_expected_probes, estimate_worst_case,
        exhaustive_expected_probes, net_outcomes_table, network_scenarios, open_poisson_workload,
        outcomes_table, run_live_cell, run_net_workload_cells, run_workload_cells,
        standard_workloads, sweep, worst_case_over_colorings, ChurnTrajectory, Estimate,
        FailureModel, LiveCellOutcome, NetScenario, NetWorkloadCell, NetWorkloadOutcome, Table,
        WorkloadCell, WorkloadOutcome, WorkloadStrategy,
    };
    pub use quorum_systems::{
        catalogue, BuiltSystem, Composition, CompositionNode, CrumblingWalls, Grid, Hqs, Majority,
        SpecError, SpecErrorKind, SystemSpec, TreeQuorum, Wheel,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let maj = Majority::new(3).unwrap();
        assert_eq!(maj.universe_size(), 3);
        let value = exact::optimal_expected(&maj, 0.5).unwrap();
        assert!((value - 2.5).abs() < 1e-12);
        assert!((bounds::maj_randomized_exact(3) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn facade_modules_are_reachable() {
        assert_eq!(crate::systems::Wheel::new(4).unwrap().universe_size(), 4);
        assert_eq!(crate::core::ElementSet::full(6).len(), 6);
        assert!(crate::cluster::NetworkConfig::wan().is_valid());
    }
}

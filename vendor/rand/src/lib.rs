//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate, vendored so the workspace builds without network access.
//!
//! Only the surface actually used by this workspace is provided:
//!
//! * [`RngCore`] / [`SeedableRng`] / the [`Rng`] extension trait
//!   (`gen_range`, `gen_bool`, `gen`);
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded via SplitMix64, *not* the upstream ChaCha12, so
//!   streams differ from the real crate but are stable for this workspace);
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! manifest; no call sites need to change.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanded with SplitMix64
    /// (mirrors `rand_core`'s default).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, out) in x.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from ambient process entropy.
    fn from_entropy() -> Self {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u64(std::process::id() as u64);
        Self::seed_from_u64(hasher.finish())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        sample_f64(self) < p
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard2,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Distributions: only what `gen`/`gen_range` need.
pub mod distributions {
    use super::RngCore;

    /// Types sampleable "from the standard distribution" via [`super::Rng::gen`].
    pub trait Standard2: Sized {
        /// Samples one value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard2 for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Standard2 for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard2 for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            super::sample_f64(rng)
        }
    }

    impl Standard2 for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Uniform range sampling.
    pub mod uniform {
        use super::super::{sample_f64, uniform_u64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Samples one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_range_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(uniform_u64(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
                    }
                }
            )*};
        }
        impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * sample_f64(rng)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * sample_f64(rng)
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Upstream `rand` uses ChaCha12 here; the shim trades stream
    /// compatibility for zero dependencies. Statistical quality is ample for
    /// Monte-Carlo probing experiments.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Never all-zero: reseed degenerate states through SplitMix64.
            if s.iter().all(|&w| w == 0) {
                let mut state = 0x853C_49E6_748F_EA9B;
                for w in &mut s {
                    *w = splitmix64(&mut state);
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    /// A small, fast generator: SplitMix64 (Steele, Lea & Flood).
    ///
    /// One `u64` of state, one add + two xor-shift-multiplies per word, and —
    /// crucially for per-trial derivation — **seeding is a single store**
    /// (no seed-expansion loop like [`StdRng`]'s 32-byte schedule). SplitMix64
    /// passes BigCrush; it is the workhorse behind the evaluation engine's
    /// `derive_rng(base_seed, cell, trial)` contract, where millions of
    /// short-lived generators are seeded per run.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }

        /// Single-store seeding: the whole point of the type.
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_u64, Rng};

    /// Extension methods for slices: random shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// A convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let z: u8 = rng.gen_range(0..3u8);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_supports_extension_methods() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0..7usize);
        assert!(x < 7);
        let _ = dyn_rng.gen_bool(0.5);
        let mut order = [1, 2, 3, 4];
        order.shuffle(dyn_rng);
    }

    #[test]
    fn small_rng_is_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
        // Extension methods work through the same blanket impls.
        let x: usize = a.gen_range(0..13);
        assert!(x < 13);
        let hits = (0..20_000).filter(|_| a.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        let mut buf = [0u8; 11];
        a.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&v| v != 0));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Offline, API-compatible subset of the [`rayon`](https://docs.rs/rayon)
//! crate, vendored so the workspace builds without network access.
//!
//! The shim provides the data-parallel surface the evaluation engine uses —
//! `par_iter` / `into_par_iter`, `map`, `collect`, `sum`,
//! [`current_num_threads`], and [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`] — implemented with `std::thread::scope` over
//! contiguous chunks. Item order is always preserved, so `collect` is
//! deterministic regardless of the number of worker threads.
//!
//! Differences from real rayon, by design:
//!
//! * pipelines are materialised eagerly at each adapter (fine for the
//!   bounded trial batches this workspace runs);
//! * [`ThreadPool::install`] sets a **thread-local** thread-count override
//!   for the duration of the closure instead of moving work onto pool
//!   threads, so concurrent `install`s from different threads (e.g. the
//!   test harness) cannot interfere with each other; the override is
//!   restored on unwind;
//! * work is split into `threads` contiguous chunks up front (no work
//!   stealing).

#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] on the
    /// calling thread; 0 = unset.
    static OVERRIDE_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel iterators will use.
///
/// Resolution order: the innermost [`ThreadPool::install`] active on the
/// calling thread, the `RAYON_NUM_THREADS` environment variable, then
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    let forced = OVERRIDE_THREADS.with(Cell::get);
    if forced > 0 {
        return forced;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(parsed) = value.parse::<usize>() {
            if parsed > 0 {
                return parsed;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced by the
/// shim, kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings (all available cores).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (0 = all available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle fixing the number of worker threads for work run inside
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the calling thread's override when dropped (also on unwind).
struct OverrideGuard {
    previous: usize,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        OVERRIDE_THREADS.with(|cell| cell.set(self.previous));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing all parallel
    /// iterators executed inside it on the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = OVERRIDE_THREADS.with(|cell| {
            let previous = cell.get();
            cell.set(self.threads);
            previous
        });
        let _guard = OverrideGuard { previous };
        op()
    }

    /// The number of worker threads of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Order-preserving parallel map over owned items.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, tail));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Parallel iterator adapters (eagerly evaluated, order-preserving).
pub mod iter {
    use super::parallel_map;

    /// An iterator whose adapters evaluate in parallel.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Materialises all items, in order.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps every item through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Collects all items, preserving order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.drive().into_iter().collect()
        }

        /// Sums all items.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.drive().into_iter().sum()
        }

        /// Applies `op` to every item in parallel (for its side effects).
        fn for_each<F>(self, op: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            let _ = self.map(op).drive();
        }

        /// Number of items.
        fn count(self) -> usize {
            self.drive().len()
        }
    }

    /// Base parallel iterator over a materialised item list.
    pub struct IntoParIter<T> {
        pub(crate) items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;

        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// The result of [`ParallelIterator::map`].
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync + Send,
    {
        type Item = R;

        fn drive(self) -> Vec<R> {
            parallel_map(self.base.drive(), self.f)
        }
    }

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoParIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            IntoParIter { items: self }
        }
    }

    macro_rules! impl_range_into_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = IntoParIter<$t>;

                fn into_par_iter(self) -> Self::Iter {
                    IntoParIter { items: self.collect() }
                }
            }
        )*};
    }
    impl_range_into_par_iter!(usize, u32, u64, i32, i64);

    /// Conversion into a borrowing parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type (a reference).
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Creates a parallel iterator over references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = IntoParIter<&'data T>;

        fn par_iter(&'data self) -> Self::Iter {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = IntoParIter<&'data T>;

        fn par_iter(&'data self) -> Self::Iter {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }
}

/// The traits needed to call `.par_iter()` / `.into_par_iter()` / `.map()`.
pub mod prelude {
    pub use super::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn order_is_independent_of_thread_count() {
        let baseline: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| {
                (0..500u64)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(0x9E37))
                    .collect()
            });
        let wide: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(7)
            .build()
            .unwrap()
            .install(|| {
                (0..500u64)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(0x9E37))
                    .collect()
            });
        assert_eq!(baseline, wide);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1, 2, 3, 4, 5];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let total: i32 = data.par_iter().map(|&x| x).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn install_is_scoped_to_the_calling_thread() {
        // Concurrent installs on different threads must not see each other.
        let ambient = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 5);
            let seen_elsewhere = std::thread::spawn(current_num_threads).join().unwrap();
            assert_eq!(seen_elsewhere, ambient, "override leaked across threads");
        });
        assert_eq!(current_num_threads(), ambient, "override not restored");
    }

    #[test]
    fn install_restores_override_on_panic() {
        let ambient = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(9).build().unwrap();
        let result = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(result.is_err());
        assert_eq!(
            current_num_threads(),
            ambient,
            "override leaked after panic"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}

//! Offline, API-compatible subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking crate, vendored so `cargo bench` works without network access.
//!
//! The shim keeps the structural API (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! [`criterion_group!`] / [`criterion_main!`] macros) and reports wall-clock
//! mean time per iteration on stdout. It performs no statistical analysis,
//! produces no HTML reports, and keeps sample counts small so benches stay
//! quick.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: configuration plus reporting.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A group of related benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(
            &label,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, optionally with a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter shown after `/`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the mean duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (at least once),
        // measuring the rough per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Measurement: `sample_size` samples within the measurement budget.
        let budget_iters = if per_iter.is_zero() {
            self.sample_size as u64
        } else {
            (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1)) as u64
        };
        let iters = budget_iters.clamp(1, self.sample_size as u64 * 1_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / iters as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        warm_up_time,
        measurement_time,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("{label:<60} time: [{mean:?}/iter]"),
        None => println!("{label:<60} (no iterations recorded)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_mean() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}

//! Offline, API-compatible subset of the [`proptest`](https://docs.rs/proptest)
//! crate, vendored so the workspace's property tests run without network
//! access.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` line), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`, integer and float range strategies,
//! [`collection::vec`], [`sample::select`], [`any`]`::<bool>()` and
//! [`Strategy::prop_map`].
//!
//! Unsupported (by design): shrinking, persistence files, `prop_oneof!`,
//! recursive strategies. Failing cases report the deterministic case index;
//! every run generates the same cases, so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-case plumbing used by the generated test bodies.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case violated an assumption and should be skipped.
        Reject,
        /// The case failed an assertion.
        Fail(String),
    }

    /// Outcome of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Configuration accepted via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the shim trades a little coverage for
            // suite latency since cases never shrink anyway.
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test RNG used to generate case values.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Derives a stable RNG from the test function name (FNV-1a).
        pub fn deterministic(test_name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Types with a canonical "arbitrary value" strategy, for [`any`].
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rand::Rng::gen_bool(rng, 0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A permitted size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit collections.

    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let index = rand::Rng::gen_range(rng, 0..self.items.len());
            self.items[index].clone()
        }
    }

    /// Uniformly selects one of the given values each case.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }
}

/// Mirrors proptest's `prop` module path (e.g. `prop::sample::select`).
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

/// Declares property tests: each `fn` runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$attr:meta])*
          fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    case += 1;
                    $( let $arg = $crate::Strategy::new_value(&($strategy), &mut rng); )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(64),
                                "proptest '{}': too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest '{}' failed at generated case #{case}: {message}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
            stringify!($left),
            stringify!($right),
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {left:?})",
            stringify!($left),
            stringify!($right),
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The imports property tests typically need.
pub mod prelude {
    pub use super::test_runner::TestCaseError;
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 5u64..=7, z in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=7).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn select_picks_members(n in prop::sample::select(vec![3usize, 5, 7])) {
            prop_assert!(n == 3 || n == 5 || n == 7);
        }

        #[test]
        fn prop_map_transforms(doubled in (1usize..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!((2..100).contains(&doubled));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments and custom configs both parse.
        #[test]
        fn config_is_honoured(x in 0usize..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "failed at generated case")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }

    #[test]
    fn generation_is_deterministic() {
        use super::test_runner::TestRng;
        use super::Strategy;
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        for _ in 0..100 {
            assert_eq!(
                (0usize..1000).new_value(&mut a),
                (0usize..1000).new_value(&mut b)
            );
        }
    }
}

//! Mutual exclusion over a failing cluster **under contention**: several
//! clients race for the lock every round, holders keep it for a few rounds,
//! and probing is how each client finds a live quorum cheaply.
//!
//! The cluster is driven by a [`ChurnTrajectory`] — a seeded fail/repair
//! Markov timeline — so nodes crash and recover the way production fleets
//! do. Acquisition latency (virtual time spent probing) is accumulated into
//! a [`LogHistogram`] and reported as p50/p95/p99, together with the
//! per-node load-imbalance factor the probe traffic induced.
//!
//! Run with:
//!
//! ```text
//! cargo run --example mutual_exclusion -p probequorum
//! EXAMPLE_ROUNDS=60 cargo run --release --example mutual_exclusion -p probequorum
//! ```

use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Reads a `usize` knob from the environment (CI smoke runs bound the work).
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), QuorumError> {
    let rounds = env_usize("EXAMPLE_ROUNDS", 200);
    let clients: Vec<u64> = (1..=env_usize("EXAMPLE_CLIENTS", 6) as u64).collect();
    let hold_rounds = 2usize;

    let rows = 10;
    let wall = CrumblingWalls::triang(rows)?;
    let n = wall.universe_size();
    println!("== Contended mutual exclusion on a Triang({rows}) system, n = {n} ==\n");
    println!(
        "{} clients race for the lock every round; a holder keeps it for {hold_rounds} rounds.\n",
        clients.len()
    );

    // A realistic failure timeline: each node fails with probability 0.03 and
    // recovers with probability 0.12 per round, i.e. one node in five is down
    // in steady state and failures persist for ~8 rounds.
    let churn = ChurnTrajectory::generate(n, 0.03, 0.12, rounds, 4242);
    println!(
        "churn timeline: fail {:.2}/round, repair {:.2}/round, stationary red fraction {:.2}",
        churn.fail_rate(),
        churn.repair_rate(),
        churn.stationary_red_fraction()
    );

    // The stationary distribution of independent fail/repair chains is iid
    // across nodes, so the word-parallel batched estimator (64 trials per
    // word pass) predicts the long-run fraction of rounds with no live
    // quorum before the simulation runs.
    let predicted_outage =
        batched_failure_probability(&wall, churn.stationary_red_fraction(), 200_000, 4242);
    println!(
        "predicted outage fraction (batched estimator, 200k trials): {:.4} ± {:.4}\n",
        predicted_outage.mean, predicted_outage.std_error
    );

    // A partition-and-heal trace rides on top of the churn: a third of the
    // nodes drops off the network for the middle of the run (rounds map to
    // trace instants, one millisecond per round). The window is open-ended;
    // `heal_all` closes it — the heal is an explicit control-plane event,
    // exactly like an operator fixing a switch.
    let partition_from = rounds / 3;
    let heal_at = (2 * rounds) / 3;
    let cut: Vec<usize> = (0..n / 3).collect();
    let mut partitions = PartitionSchedule::minority(
        cut.clone(),
        SimTime::from_millis(partition_from as u64),
        SimTime::from_micros(u64::MAX),
    );
    println!(
        "partition trace: nodes 0..{} unreachable from round {partition_from}, healed at round {heal_at}\n",
        cut.len()
    );

    let cluster = Cluster::new(n, NetworkConfig::lan(), 4242);
    let mut mutex = QuorumMutex::new(wall, cluster, ProbeCw::new());
    let mut rng = StdRng::seed_from_u64(99);

    let mut completed = vec![0usize; clients.len()];
    let mut rejected_no_quorum = 0usize;
    let mut rejected_contended = 0usize;
    let mut outage_rounds = 0usize;
    let mut acquire_latency = LogHistogram::new();
    // client -> round at which it releases the lock.
    let mut holding: HashMap<u64, usize> = HashMap::new();

    let mut outage_rounds_partitioned = 0usize;
    for (round, coloring) in churn.iter().enumerate() {
        if round == heal_at {
            partitions.heal_all(SimTime::from_millis(heal_at as u64));
        }
        // Advance the cluster to this round's failure pattern, overlaying
        // the partition trace: an unreachable node is indistinguishable
        // from a crashed one to the probing clients.
        let trace_at = SimTime::from_millis(round as u64);
        let unreachable = partitions.unreachable_at(n, trace_at);
        let effective = partitions.observed_coloring(&coloring, trace_at);
        mutex.cluster_mut().apply_coloring(&effective);
        let in_partition = !unreachable.is_empty();
        let mut saw_no_quorum = false;
        for (idx, &client) in clients.iter().enumerate() {
            if let Some(&until) = holding.get(&client) {
                if round >= until {
                    mutex.release(client).expect("holder can always release");
                    holding.remove(&client);
                }
                continue;
            }
            // Idle clients want the lock more often than not.
            if !rng.gen_bool(0.7) {
                continue;
            }
            let started = mutex.cluster().now();
            match mutex.try_acquire(client) {
                Ok(_quorum) => {
                    assert!(mutex.exclusion_invariant_holds(), "exclusion violated!");
                    completed[idx] += 1;
                    acquire_latency
                        .record((mutex.cluster().now().saturating_sub(started)).as_micros());
                    holding.insert(client, round + hold_rounds);
                }
                Err(MutexError::NoLiveQuorum) => {
                    rejected_no_quorum += 1;
                    saw_no_quorum = true;
                }
                Err(MutexError::Contended { .. }) => rejected_contended += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        if saw_no_quorum {
            outage_rounds += 1;
            if in_partition {
                outage_rounds_partitioned += 1;
            }
        }
    }
    for &client in holding.keys() {
        mutex.release(client).expect("holder can always release");
    }

    let mut table = Table::new(["client", "critical sections entered"]);
    for (idx, client) in clients.iter().enumerate() {
        table.add_row(vec![format!("client {client}"), completed[idx].to_string()]);
    }
    println!("{table}");
    println!(
        "acquisition latency (virtual): p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms over {} acquisitions",
        acquire_latency.p50().unwrap_or(0) as f64 / 1_000.0,
        acquire_latency.p95().unwrap_or(0) as f64 / 1_000.0,
        acquire_latency.p99().unwrap_or(0) as f64 / 1_000.0,
        acquire_latency.count()
    );
    println!("attempts rejected because no live quorum existed: {rejected_no_quorum}");
    println!(
        "observed outage-round fraction: {:.4} (batched churn-only prediction: {:.4})",
        outage_rounds as f64 / churn.len() as f64,
        predicted_outage.mean
    );
    println!(
        "outage rounds while partitioned: {outage_rounds_partitioned} of {} partitioned rounds; \
         after heal_all the trace reverts to churn-only failures",
        heal_at - partition_from
    );
    println!("attempts rejected because of contention:          {rejected_contended}");
    let loads: Vec<u64> = (0..n).map(|e| mutex.cluster().probes_received(e)).collect();
    println!(
        "per-node probe load imbalance (max/mean): {:.2}",
        load_imbalance(&loads)
    );
    println!(
        "total probe RPCs issued: {} over {} virtual time",
        mutex.cluster().total_rpcs(),
        mutex.cluster().now()
    );
    println!("\nThe exclusion invariant held on every acquisition: quorum intersection at work.");
    Ok(())
}

//! Mutual exclusion over a failing cluster, the paper's first motivating
//! application: clients must lock a *live* quorum before entering the critical
//! section, and probing is how they find one cheaply.
//!
//! The cluster is driven by a [`ChurnTrajectory`] — a seeded fail/repair
//! Markov timeline — so nodes crash and recover the way production fleets
//! do, rather than by one-off random shakes.
//!
//! Run with:
//!
//! ```text
//! cargo run --example mutual_exclusion -p probequorum
//! ```

use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), QuorumError> {
    let rows = 10;
    let wall = CrumblingWalls::triang(rows)?;
    let n = wall.universe_size();
    println!("== Quorum-based mutual exclusion on a Triang({rows}) system, n = {n} ==\n");

    // A realistic failure timeline: each node fails with probability 0.03 and
    // recovers with probability 0.12 per round, i.e. one node in five is down
    // in steady state and failures persist for ~8 rounds.
    let churn = ChurnTrajectory::generate(n, 0.03, 0.12, 200, 4242);
    println!(
        "churn timeline: fail {:.2}/round, repair {:.2}/round, stationary red fraction {:.2}\n",
        churn.fail_rate(),
        churn.repair_rate(),
        churn.stationary_red_fraction()
    );

    // The stationary distribution of independent fail/repair chains is iid
    // across nodes, so the word-parallel batched estimator (64 trials per
    // word pass) predicts the long-run fraction of rounds with no live
    // quorum before the simulation runs.
    let predicted_outage =
        batched_failure_probability(&wall, churn.stationary_red_fraction(), 200_000, 4242);
    println!(
        "predicted outage fraction (batched estimator, 200k trials): {:.4} ± {:.4}\n",
        predicted_outage.mean, predicted_outage.std_error
    );

    let cluster = Cluster::new(n, NetworkConfig::lan(), 4242);
    let mut mutex = QuorumMutex::new(wall, cluster, ProbeCw::new());
    let mut rng = StdRng::seed_from_u64(99);

    let clients: Vec<u64> = (1..=4).collect();
    let mut completed = vec![0usize; clients.len()];
    let mut rejected_no_quorum = 0usize;
    let mut rejected_contended = 0usize;

    for coloring in churn.iter() {
        // Advance the cluster to this round's failure pattern.
        mutex.cluster_mut().apply_coloring(coloring);
        // A random client tries to enter the critical section.
        let idx = rng.gen_range(0..clients.len());
        let client = clients[idx];
        match mutex.try_acquire(client) {
            Ok(quorum) => {
                assert!(mutex.exclusion_invariant_holds(), "exclusion violated!");
                completed[idx] += 1;
                // ... critical section would run here ...
                let _ = quorum;
                mutex.release(client).expect("holder can always release");
            }
            Err(MutexError::NoLiveQuorum) => rejected_no_quorum += 1,
            Err(MutexError::Contended { .. }) => rejected_contended += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    let mut table = Table::new(["client", "critical sections entered"]);
    for (idx, client) in clients.iter().enumerate() {
        table.add_row(vec![format!("client {client}"), completed[idx].to_string()]);
    }
    println!("{table}");
    println!("attempts rejected because no live quorum existed: {rejected_no_quorum}");
    println!(
        "observed outage fraction: {:.4} (batched prediction: {:.4})",
        rejected_no_quorum as f64 / churn.len() as f64,
        predicted_outage.mean
    );
    println!("attempts rejected because of contention:          {rejected_contended}");
    println!(
        "total probe RPCs issued: {} over {} virtual time",
        mutex.cluster().total_rpcs(),
        mutex.cluster().now()
    );
    println!("\nThe exclusion invariant held on every acquisition: quorum intersection at work.");
    Ok(())
}

//! Probe-complexity survey: sweep every family of the paper over growing
//! universe sizes, fit the growth exponent, and print the paper's predicted
//! exponent next to the measurement.
//!
//! The whole survey is one [`EvalPlan`] — the registries enumerate the
//! families and strategies, the engine executes every cell in parallel, and
//! the rows below are read straight out of the resulting [`EvalReport`].
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example probe_survey -p probequorum
//! ```

use probequorum::prelude::*;
use probequorum::sim::eval::fit_points;

/// One sweep: a family name, the strategy to probe it with, and the size
/// hints passed to the registry (rounded to whatever the family supports).
struct Sweep {
    family: &'static str,
    strategy: &'static str,
    size_hints: &'static [usize],
    paper_exponent: String,
}

fn main() -> Result<(), QuorumError> {
    let systems = SystemRegistry::paper();
    let strategies = RegistryBuilder::new().paper().build();
    // `EXAMPLE_TRIALS` bounds the work in CI smoke runs.
    let trials = std::env::var("EXAMPLE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let p = 0.5;

    let sweeps = [
        Sweep {
            family: "Maj",
            strategy: "Probe_Maj",
            size_hints: &[11, 21, 41, 81, 161],
            paper_exponent: "1.0 (n − Θ(√n))".into(),
        },
        Sweep {
            family: "Triang",
            strategy: "Probe_CW",
            size_hints: &[10, 36, 78, 136, 300],
            paper_exponent: "0.5 (2k − 1 with k ≈ √(2n))".into(),
        },
        Sweep {
            family: "Tree",
            strategy: "Probe_Tree",
            size_hints: &[15, 31, 63, 127, 255, 511, 1023],
            paper_exponent: format!("{:.3} (log2(1+p))", bounds::tree_probabilistic_exponent(p)),
        },
        Sweep {
            family: "HQS",
            strategy: "Probe_HQS",
            size_hints: &[9, 27, 81, 243, 729, 2187],
            paper_exponent: format!(
                "{:.3} (log3 2.5)",
                bounds::hqs_probabilistic_exponent_symmetric()
            ),
        },
    ];

    // Plan every cell of the survey, then run the engine once.
    let mut plan = EvalPlan::new(7).trials(trials);
    for sweep in &sweeps {
        let strategy = strategies
            .build(sweep.strategy)
            .expect("registered strategy");
        for &hint in sweep.size_hints {
            let system = systems
                .build(sweep.family, hint)
                .expect("registered family");
            plan.probe(&system, &strategy, ColoringSource::iid(p));
        }
    }
    let report = EvalEngine::new().run(&plan);

    println!("== Growth of the expected probe count at p = 1/2 ==\n");
    let mut table = Table::new([
        "family",
        "strategy",
        "sizes",
        "fitted exponent",
        "paper exponent",
    ]);
    let mut offset = 0;
    for sweep in &sweeps {
        let cells = &report.cells[offset..offset + sweep.size_hints.len()];
        offset += sweep.size_hints.len();
        let fit = fit_power_law(&fit_points(cells));
        table.add_row(vec![
            sweep.family.into(),
            sweep.strategy.into(),
            format!(
                "{:?}",
                cells
                    .iter()
                    .map(|c| c.universe_size.unwrap())
                    .collect::<Vec<_>>()
            ),
            format!("{:.3}", fit.exponent),
            sweep.paper_exponent.clone(),
        ]);
    }
    println!("{table}");
    println!(
        "(One evaluation plan, {} cells, {} trials, {:.2?} on {} thread(s).)",
        report.cells.len(),
        plan.total_trials(),
        report.wall,
        report.threads,
    );

    // Also show how the Tree exponent moves with p (Proposition 3.6).
    let tree_hints: Vec<usize> = (3..=9).map(|h| (1usize << (h + 1)) - 1).collect();
    let probe_tree = strategies.build("Probe_Tree").expect("registered strategy");
    let probabilities = [0.1, 0.25, 0.5];
    let mut plan = EvalPlan::new(8).trials(trials);
    for &p in &probabilities {
        for &hint in &tree_hints {
            let tree = systems.build("Tree", hint).expect("registered family");
            plan.probe(&tree, &probe_tree, ColoringSource::iid(p));
        }
    }
    let report = EvalEngine::new().run(&plan);

    println!("\n== Tree exponent as a function of the failure probability p ==\n");
    let mut tree_table = Table::new(["p", "fitted exponent", "log2(1+p)"]);
    for (i, p) in probabilities.into_iter().enumerate() {
        let cells = &report.cells[i * tree_hints.len()..(i + 1) * tree_hints.len()];
        let fit = fit_power_law(&fit_points(cells));
        tree_table.add_row(vec![
            format!("{p}"),
            format!("{:.3}", fit.exponent),
            format!("{:.3}", bounds::tree_probabilistic_exponent(p)),
        ]);
    }
    println!("{tree_table}");
    println!("(Small sizes inflate the fitted exponents slightly; the trend matches the paper.)");
    Ok(())
}

//! Probe-complexity survey: sweep every family of the paper over growing
//! universe sizes, fit the growth exponent, and print the paper's predicted
//! exponent next to the measurement.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example probe_survey -p probequorum
//! ```

use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), QuorumError> {
    let mut rng = StdRng::seed_from_u64(7);
    let trials = 2_000;
    let p = 0.5;

    println!("== Growth of the expected probe count at p = 1/2 ==\n");
    let mut table = Table::new(["family", "strategy", "sizes", "fitted exponent", "paper exponent"]);

    // Majority: essentially linear (exponent 1).
    let majorities: Vec<Majority> = [11, 21, 41, 81, 161]
        .into_iter()
        .map(Majority::new)
        .collect::<Result<_, _>>()?;
    let row = sweep("Maj", &majorities, &ProbeMaj::new(), &FailureModel::iid(p), trials, &mut rng);
    let fit = fit_power_law(&row.as_fit_points());
    table.add_row(vec![
        "Maj".into(),
        row.strategy.clone(),
        format!("{:?}", row.points.iter().map(|pt| pt.universe_size).collect::<Vec<_>>()),
        format!("{:.3}", fit.exponent),
        "1.0 (n − Θ(√n))".into(),
    ]);

    // Triang: constant in n for fixed shape growth? Its cost grows with the
    // number of rows k ≈ √(2n), i.e. exponent ~0.5 in n.
    let triangs: Vec<CrumblingWalls> = [4, 8, 12, 16, 24]
        .into_iter()
        .map(CrumblingWalls::triang)
        .collect::<Result<_, _>>()?;
    let row = sweep("Triang", &triangs, &ProbeCw::new(), &FailureModel::iid(p), trials, &mut rng);
    let fit = fit_power_law(&row.as_fit_points());
    table.add_row(vec![
        "Triang".into(),
        row.strategy.clone(),
        format!("{:?}", row.points.iter().map(|pt| pt.universe_size).collect::<Vec<_>>()),
        format!("{:.3}", fit.exponent),
        "0.5 (2k − 1 with k ≈ √(2n))".into(),
    ]);

    // Tree: exponent log2(1.5) ≈ 0.585.
    let trees: Vec<TreeQuorum> = (3..=9).map(TreeQuorum::new).collect::<Result<_, _>>()?;
    let row = sweep("Tree", &trees, &ProbeTree::new(), &FailureModel::iid(p), trials, &mut rng);
    let fit = fit_power_law(&row.as_fit_points());
    table.add_row(vec![
        "Tree".into(),
        row.strategy.clone(),
        format!("{:?}", row.points.iter().map(|pt| pt.universe_size).collect::<Vec<_>>()),
        format!("{:.3}", fit.exponent),
        format!("{:.3} (log2(1+p))", bounds::tree_probabilistic_exponent(p)),
    ]);

    // HQS: exponent log3(2.5) ≈ 0.834 at p = 1/2.
    let hqss: Vec<Hqs> = (2..=7).map(Hqs::new).collect::<Result<_, _>>()?;
    let row = sweep("HQS", &hqss, &ProbeHqs::new(), &FailureModel::iid(p), trials, &mut rng);
    let fit = fit_power_law(&row.as_fit_points());
    table.add_row(vec![
        "HQS".into(),
        row.strategy.clone(),
        format!("{:?}", row.points.iter().map(|pt| pt.universe_size).collect::<Vec<_>>()),
        format!("{:.3}", fit.exponent),
        format!("{:.3} (log3 2.5)", bounds::hqs_probabilistic_exponent_symmetric()),
    ]);

    println!("{table}");

    // Also show how the Tree exponent moves with p (Proposition 3.6).
    println!("\n== Tree exponent as a function of the failure probability p ==\n");
    let mut tree_table = Table::new(["p", "fitted exponent", "log2(1+p)"]);
    for p in [0.1, 0.25, 0.5] {
        let row = sweep("Tree", &trees, &ProbeTree::new(), &FailureModel::iid(p), trials, &mut rng);
        let fit = fit_power_law(&row.as_fit_points());
        tree_table.add_row(vec![
            format!("{p}"),
            format!("{:.3}", fit.exponent),
            format!("{:.3}", bounds::tree_probabilistic_exponent(p)),
        ]);
    }
    println!("{tree_table}");
    println!("(Small sizes inflate the fitted exponents slightly; the trend matches the paper.)");
    Ok(())
}

//! A replicated register over a failing cluster **under contention**:
//! several clients issue interleaved reads and writes every round, with
//! probe strategies locating a live quorum for every operation.
//!
//! Replica failures follow a [`ChurnTrajectory`] (a seeded fail/repair
//! Markov timeline), and the register probes with the load-aware
//! [`LeastLoadedScan`]: its [`LoadView`] is refreshed from the cluster's
//! per-node probe counters each round, so operations steer toward cold
//! replicas and the load stays flat even though tree-structured quorums are
//! naturally skewed. Operation latency lands in a [`LogHistogram`].
//!
//! Run with:
//!
//! ```text
//! cargo run --example replicated_store -p probequorum
//! EXAMPLE_ROUNDS=50 cargo run --release --example replicated_store -p probequorum
//! ```

use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reads a `usize` knob from the environment (CI smoke runs bound the work).
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), QuorumError> {
    let rounds = env_usize("EXAMPLE_ROUNDS", 150);
    let clients = env_usize("EXAMPLE_CLIENTS", 4);

    let tree = TreeQuorum::new(5)?; // 63 replicas
    let n = tree.universe_size();
    println!("== Replicated register on a Tree quorum system, n = {n} replicas ==\n");
    println!("{clients} clients issue interleaved reads and writes every round,");
    println!("probing with the load-aware LeastLoaded strategy.\n");

    // One replica in four is down in steady state; failures persist ~7 rounds.
    let churn = ChurnTrajectory::generate(n, 0.05, 0.15, rounds, 77);
    println!(
        "churn timeline: fail {:.2}/round, repair {:.2}/round, stationary red fraction {:.2}",
        churn.fail_rate(),
        churn.repair_rate(),
        churn.stationary_red_fraction()
    );

    // The stationary churn marginal is iid across replicas, so the
    // word-parallel batched estimator predicts the long-run fraction of
    // rounds in which reads/writes must block, before any RPC is simulated.
    let predicted_outage =
        batched_failure_probability(&tree, churn.stationary_red_fraction(), 200_000, 77);
    println!(
        "predicted outage fraction (batched estimator, 200k trials): {:.4} ± {:.4}\n",
        predicted_outage.mean, predicted_outage.std_error
    );

    let cluster = Cluster::new(n, NetworkConfig::wan(), 77);
    let view = LoadView::new(n);
    let mut register = ReplicatedRegister::new(tree, cluster, LeastLoadedScan::new(view.clone()));
    let mut rng = StdRng::seed_from_u64(123);

    let mut writes_ok = 0usize;
    let mut writes_blocked = 0usize;
    let mut reads_ok = 0usize;
    let mut reads_blocked = 0usize;
    let mut stale_reads = 0usize;
    let mut latency = LogHistogram::new();
    let mut last_committed: Option<(u64, Vec<u8>)> = None;

    for (round, coloring) in churn.iter().enumerate() {
        // Advance the replica fleet to this round's failure pattern, and
        // publish its accumulated probe load so the strategy sees it.
        register.cluster_mut().apply_coloring(coloring);
        for e in 0..n {
            view.set(e, register.cluster().probes_received(e));
        }
        for client in 0..clients {
            let started = register.cluster().now();
            if rng.gen_bool(0.4) {
                let payload = format!("round-{round}-client-{client}").into_bytes();
                match register.write(payload.clone()) {
                    Ok(version) => {
                        writes_ok += 1;
                        last_committed = Some((version, payload));
                    }
                    Err(_) => writes_blocked += 1,
                }
            } else {
                match register.read() {
                    Ok(result) => {
                        reads_ok += 1;
                        if let Some((version, ref value)) = last_committed {
                            // Freshness: the read must return the latest
                            // committed write.
                            if result.version < version || &result.value != value {
                                stale_reads += 1;
                            }
                        }
                    }
                    Err(_) => reads_blocked += 1,
                }
            }
            latency.record((register.cluster().now().saturating_sub(started)).as_micros());
        }
    }

    let mut table = Table::new(["operation", "completed", "blocked (no live quorum)"]);
    table.add_row(vec![
        "write".into(),
        writes_ok.to_string(),
        writes_blocked.to_string(),
    ]);
    table.add_row(vec![
        "read".into(),
        reads_ok.to_string(),
        reads_blocked.to_string(),
    ]);
    println!("{table}");
    println!(
        "operation latency (virtual): p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms over {} operations",
        latency.p50() as f64 / 1_000.0,
        latency.p95() as f64 / 1_000.0,
        latency.p99() as f64 / 1_000.0,
        latency.count()
    );
    println!(
        "observed blocked fraction: {:.4} (batched prediction: {:.4})",
        (writes_blocked + reads_blocked) as f64 / (churn.len() * clients) as f64,
        predicted_outage.mean
    );
    println!("stale reads observed: {stale_reads} (must be 0 — quorum intersection)");
    let loads: Vec<u64> = (0..n)
        .map(|e| register.cluster().probes_received(e))
        .collect();
    println!(
        "per-replica probe load imbalance (max/mean): {:.2}",
        load_imbalance(&loads)
    );
    println!(
        "probe RPCs issued: {}, virtual time elapsed: {}",
        register.cluster().total_rpcs(),
        register.cluster().now()
    );
    assert_eq!(
        stale_reads, 0,
        "a read returned stale data despite quorum intersection"
    );
    println!("\nEvery read that completed returned the latest committed value.");
    Ok(())
}

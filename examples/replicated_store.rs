//! A replicated register over a failing cluster **under contention**:
//! several clients issue interleaved reads and writes every round, with
//! probe strategies locating a live quorum for every operation.
//!
//! Replica failures follow a [`ChurnTrajectory`] (a seeded fail/repair
//! Markov timeline), and the register probes with the load-aware
//! [`LeastLoadedScan`]: its [`LoadView`] is refreshed from the cluster's
//! per-node probe counters each round, so operations steer toward cold
//! replicas and the load stays flat even though tree-structured quorums are
//! naturally skewed. Operation latency lands in a [`LogHistogram`].
//!
//! Run with:
//!
//! ```text
//! cargo run --example replicated_store -p probequorum
//! EXAMPLE_ROUNDS=50 cargo run --release --example replicated_store -p probequorum
//! ```

use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reads a `usize` knob from the environment (CI smoke runs bound the work).
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), QuorumError> {
    let rounds = env_usize("EXAMPLE_ROUNDS", 150);
    let clients = env_usize("EXAMPLE_CLIENTS", 4);

    let tree = TreeQuorum::new(5)?; // 63 replicas
    let n = tree.universe_size();
    println!("== Replicated register on a Tree quorum system, n = {n} replicas ==\n");
    println!("{clients} clients issue interleaved reads and writes every round,");
    println!("probing with the load-aware LeastLoaded strategy.\n");

    // One replica in four is down in steady state; failures persist ~7 rounds.
    let churn = ChurnTrajectory::generate(n, 0.05, 0.15, rounds, 77);
    println!(
        "churn timeline: fail {:.2}/round, repair {:.2}/round, stationary red fraction {:.2}",
        churn.fail_rate(),
        churn.repair_rate(),
        churn.stationary_red_fraction()
    );

    // The stationary churn marginal is iid across replicas, so the
    // word-parallel batched estimator predicts the long-run fraction of
    // rounds in which reads/writes must block, before any RPC is simulated.
    let predicted_outage =
        batched_failure_probability(&tree, churn.stationary_red_fraction(), 200_000, 77);
    println!(
        "predicted outage fraction (batched estimator, 200k trials): {:.4} ± {:.4}\n",
        predicted_outage.mean, predicted_outage.std_error
    );

    // A flapping partition rides on top of the churn: a quarter of the
    // replicas (including the tree root) blink off and on through the first
    // two thirds of the run, then the link is healed for good. One round
    // maps to one millisecond of trace time.
    let flap_until = (2 * rounds) / 3;
    let flappers: Vec<usize> = (0..n / 4).collect();
    let mut partitions = PartitionSchedule::flapping(
        flappers.clone(),
        SimTime::from_millis(10),
        SimTime::from_millis(4),
        SimTime::from_millis(rounds as u64),
    );
    partitions.heal_all(SimTime::from_millis(flap_until as u64));
    println!(
        "partition trace: replicas 0..{} flap (4ms down / 10ms period) until round {flap_until}, then heal\n",
        flappers.len()
    );

    let cluster = Cluster::new(n, NetworkConfig::wan(), 77);
    let view = LoadView::new(n);
    let mut register = ReplicatedRegister::new(tree, cluster, LeastLoadedScan::new(view.clone()));
    let mut rng = StdRng::seed_from_u64(123);

    let mut writes_ok = 0usize;
    let mut writes_blocked = 0usize;
    let mut reads_ok = 0usize;
    let mut reads_blocked = 0usize;
    let mut stale_reads = 0usize;
    let mut latency = LogHistogram::new();
    let mut last_committed: Option<(u64, Vec<u8>)> = None;

    let mut blocked_while_flapping = 0usize;
    for (round, coloring) in churn.iter().enumerate() {
        // Advance the replica fleet to this round's failure pattern —
        // overlaying the partition trace, since an unreachable replica is
        // indistinguishable from a crashed one — and publish its
        // accumulated probe load so the strategy sees it.
        let trace_at = SimTime::from_millis(round as u64);
        let unreachable = partitions.unreachable_at(n, trace_at);
        let effective = partitions.observed_coloring(&coloring, trace_at);
        let blocked_before = writes_blocked + reads_blocked;
        register.cluster_mut().apply_coloring(&effective);
        for e in 0..n {
            view.set(e, register.cluster().probes_received(e));
        }
        for client in 0..clients {
            let started = register.cluster().now();
            if rng.gen_bool(0.4) {
                let payload = format!("round-{round}-client-{client}").into_bytes();
                match register.write(payload.clone()) {
                    Ok(version) => {
                        writes_ok += 1;
                        last_committed = Some((version, payload));
                    }
                    Err(_) => writes_blocked += 1,
                }
            } else {
                match register.read() {
                    Ok(result) => {
                        reads_ok += 1;
                        if let Some((version, ref value)) = last_committed {
                            // Freshness: the read must return the latest
                            // committed write.
                            if result.version < version || &result.value != value {
                                stale_reads += 1;
                            }
                        }
                    }
                    Err(_) => reads_blocked += 1,
                }
            }
            latency.record((register.cluster().now().saturating_sub(started)).as_micros());
        }
        if !unreachable.is_empty() {
            blocked_while_flapping += writes_blocked + reads_blocked - blocked_before;
        }
    }

    let mut table = Table::new(["operation", "completed", "blocked (no live quorum)"]);
    table.add_row(vec![
        "write".into(),
        writes_ok.to_string(),
        writes_blocked.to_string(),
    ]);
    table.add_row(vec![
        "read".into(),
        reads_ok.to_string(),
        reads_blocked.to_string(),
    ]);
    println!("{table}");
    println!(
        "operation latency (virtual): p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms over {} operations",
        latency.p50().unwrap_or(0) as f64 / 1_000.0,
        latency.p95().unwrap_or(0) as f64 / 1_000.0,
        latency.p99().unwrap_or(0) as f64 / 1_000.0,
        latency.count()
    );
    println!(
        "observed blocked fraction: {:.4} (batched prediction: {:.4})",
        (writes_blocked + reads_blocked) as f64 / (churn.len() * clients) as f64,
        predicted_outage.mean
    );
    println!(
        "operations blocked during flap windows: {blocked_while_flapping} of {} total blocked",
        writes_blocked + reads_blocked
    );
    println!("stale reads observed: {stale_reads} (must be 0 — quorum intersection)");
    let loads: Vec<u64> = (0..n)
        .map(|e| register.cluster().probes_received(e))
        .collect();
    println!(
        "per-replica probe load imbalance (max/mean): {:.2}",
        load_imbalance(&loads)
    );
    println!(
        "probe RPCs issued: {}, virtual time elapsed: {}",
        register.cluster().total_rpcs(),
        register.cluster().now()
    );
    assert_eq!(
        stale_reads, 0,
        "a read returned stale data despite quorum intersection"
    );
    println!("\nEvery read that completed returned the latest committed value.");
    Ok(())
}

//! A replicated key value — well, a replicated *register* — over a failing
//! cluster, the paper's second motivating application (replicated data
//! management à la Gifford/Thomas), with probe strategies locating live
//! quorums for every read and write.
//!
//! Replica failures follow a [`ChurnTrajectory`]: a seeded fail/repair
//! Markov timeline, so outages are correlated in time the way real replica
//! fleets degrade and heal.
//!
//! Run with:
//!
//! ```text
//! cargo run --example replicated_store -p probequorum
//! ```

use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), QuorumError> {
    let tree = TreeQuorum::new(5)?; // 63 replicas
    let n = tree.universe_size();
    println!("== Replicated register on a Tree quorum system, n = {n} replicas ==\n");

    // One replica in four is down in steady state; failures persist ~7 rounds.
    let churn = ChurnTrajectory::generate(n, 0.05, 0.15, 150, 77);
    println!(
        "churn timeline: fail {:.2}/round, repair {:.2}/round, stationary red fraction {:.2}\n",
        churn.fail_rate(),
        churn.repair_rate(),
        churn.stationary_red_fraction()
    );

    // The stationary churn marginal is iid across replicas, so the
    // word-parallel batched estimator predicts the long-run fraction of
    // rounds in which reads/writes must block, before any RPC is simulated.
    let predicted_outage =
        batched_failure_probability(&tree, churn.stationary_red_fraction(), 200_000, 77);
    println!(
        "predicted outage fraction (batched estimator, 200k trials): {:.4} ± {:.4}\n",
        predicted_outage.mean, predicted_outage.std_error
    );

    let cluster = Cluster::new(n, NetworkConfig::wan(), 77);
    let mut register = ReplicatedRegister::new(tree, cluster, ProbeTree::new());
    let mut rng = StdRng::seed_from_u64(123);

    let mut writes_ok = 0usize;
    let mut writes_blocked = 0usize;
    let mut reads_ok = 0usize;
    let mut reads_blocked = 0usize;
    let mut stale_reads = 0usize;
    let mut last_committed: Option<(u64, Vec<u8>)> = None;

    for (round, coloring) in churn.iter().enumerate() {
        // Advance the replica fleet to this round's failure pattern.
        register.cluster_mut().apply_coloring(coloring);
        if rng.gen_bool(0.4) {
            let payload = format!("round-{round}").into_bytes();
            match register.write(payload.clone()) {
                Ok(version) => {
                    writes_ok += 1;
                    last_committed = Some((version, payload));
                }
                Err(_) => writes_blocked += 1,
            }
        } else {
            match register.read() {
                Ok(result) => {
                    reads_ok += 1;
                    if let Some((version, ref value)) = last_committed {
                        // Freshness: the read must return the latest committed
                        // write (or a newer one, which cannot happen here).
                        if result.version < version || &result.value != value {
                            stale_reads += 1;
                        }
                    }
                }
                Err(_) => reads_blocked += 1,
            }
        }
    }

    let mut table = Table::new(["operation", "completed", "blocked (no live quorum)"]);
    table.add_row(vec![
        "write".into(),
        writes_ok.to_string(),
        writes_blocked.to_string(),
    ]);
    table.add_row(vec![
        "read".into(),
        reads_ok.to_string(),
        reads_blocked.to_string(),
    ]);
    println!("{table}");
    println!(
        "observed blocked fraction: {:.4} (batched prediction: {:.4})",
        (writes_blocked + reads_blocked) as f64 / churn.len() as f64,
        predicted_outage.mean
    );
    println!("stale reads observed: {stale_reads} (must be 0 — quorum intersection)");
    println!(
        "probe RPCs issued: {}, virtual time elapsed: {}",
        register.cluster().total_rpcs(),
        register.cluster().now()
    );
    assert_eq!(
        stale_reads, 0,
        "a read returned stale data despite quorum intersection"
    );
    println!("\nEvery read that completed returned the latest committed value.");
    Ok(())
}

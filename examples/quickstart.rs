//! Quickstart: build the paper's quorum systems, probe them, and compare the
//! measured probe counts with the paper's bounds.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart -p probequorum
//! ```

use probequorum::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), QuorumError> {
    let mut rng = StdRng::seed_from_u64(2001);
    let p = 0.5;
    // `EXAMPLE_TRIALS` bounds the work in CI smoke runs.
    let trials = std::env::var("EXAMPLE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);

    println!("== Average probe complexity in quorum systems — quickstart ==\n");
    println!("Every element fails independently with probability p = {p}; a probing");
    println!("algorithm looks for a live quorum (or a certificate that none exists).\n");

    let mut table = Table::new(["system", "n", "quorum size", "mean probes", "paper bound"]);

    // Majority over 101 elements: expected probes close to n (Proposition 3.2).
    let maj = Majority::new(101)?;
    let estimate = estimate_expected_probes(
        &maj,
        &ProbeMaj::new(),
        &FailureModel::iid(p),
        trials,
        &mut rng,
    );
    table.add_row(vec![
        "Maj".into(),
        maj.universe_size().to_string(),
        maj.quorum_size().to_string(),
        format!("{:.1}", estimate.mean),
        format!("n − Θ(√n) ≈ {:.1}", bounds::maj_probabilistic(101, p)),
    ]);

    // Wheel over 101 elements: constant expected probes (Corollary 3.4).
    let wheel = CrumblingWalls::wheel(101)?;
    let estimate = estimate_expected_probes(
        &wheel,
        &ProbeCw::new(),
        &FailureModel::iid(p),
        trials,
        &mut rng,
    );
    table.add_row(vec![
        "Wheel".into(),
        "101".into(),
        "2 / 100".into(),
        format!("{:.2}", estimate.mean),
        "≤ 3".into(),
    ]);

    // Triang with 13 rows (91 elements): O(k) expected probes (Theorem 3.3).
    let triang = CrumblingWalls::triang(13)?;
    let estimate = estimate_expected_probes(
        &triang,
        &ProbeCw::new(),
        &FailureModel::iid(p),
        trials,
        &mut rng,
    );
    table.add_row(vec![
        "Triang".into(),
        triang.universe_size().to_string(),
        triang.min_quorum_size().to_string(),
        format!("{:.2}", estimate.mean),
        format!("≤ 2k − 1 = {}", 2 * triang.row_count() - 1),
    ]);

    // Tree of height 6 (127 elements): O(n^0.585) (Corollary 3.7).
    let tree = TreeQuorum::new(6)?;
    let estimate = estimate_expected_probes(
        &tree,
        &ProbeTree::new(),
        &FailureModel::iid(p),
        trials,
        &mut rng,
    );
    table.add_row(vec![
        "Tree".into(),
        tree.universe_size().to_string(),
        tree.min_quorum_size().to_string(),
        format!("{:.2}", estimate.mean),
        format!(
            "O(n^0.585) ≈ {:.1}",
            (tree.universe_size() as f64).powf(0.585)
        ),
    ]);

    // HQS of height 4 (81 leaves): Θ(n^0.834) at p = 1/2 (Theorem 3.8).
    let hqs = Hqs::new(4)?;
    let estimate = estimate_expected_probes(
        &hqs,
        &ProbeHqs::new(),
        &FailureModel::iid(p),
        trials,
        &mut rng,
    );
    table.add_row(vec![
        "HQS".into(),
        hqs.universe_size().to_string(),
        hqs.quorum_size().to_string(),
        format!("{:.2}", estimate.mean),
        format!(
            "Θ(n^0.834) ≈ {:.1}",
            (hqs.universe_size() as f64).powf(0.834)
        ),
    ]);

    println!("{table}");

    println!("The crumbling-walls systems locate a live quorum after a handful of probes");
    println!("regardless of n, while Majority — the most available system — must pay");
    println!("close to n probes; Tree and HQS sit in between with polynomial exponents.");
    Ok(())
}
